// The local DAG: every valid block a validator knows, indexed by digest and
// by (round, author) slot (§2.3).
//
// Invariants maintained by the inserter (the validator's synchronizer):
//   * a block is only inserted after its entire causal history is present
//     ("causal completeness") and it passed validation;
//   * genesis blocks (round 0) are constructed locally at creation.
//
// Equivocation is first-class: a Byzantine author may have several blocks in
// the same (round, author) slot; `slot()` returns all of them.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "types/block.h"
#include "types/committee.h"

namespace mahimahi {

class Dag {
 public:
  // Constructs the DAG holding the committee's genesis blocks (round 0).
  explicit Dag(const Committee& committee);

  std::uint32_t committee_size() const { return n_; }

  bool contains(const Digest& digest) const { return by_digest_.contains(digest); }
  bool contains(const BlockRef& ref) const { return contains(ref.digest); }

  // nullptr when absent.
  BlockPtr get(const Digest& digest) const;
  BlockPtr get(const BlockRef& ref) const { return get(ref.digest); }

  // All known blocks by `author` at `round` (empty / one / several under
  // equivocation).
  const std::vector<BlockPtr>& slot(Round round, ValidatorId author) const;

  // Every block at `round`, all authors, equivocations included.
  std::vector<BlockPtr> blocks_at(Round round) const;

  // Visits each block at `round`; return false from the visitor to stop.
  void for_each_at(Round round, const std::function<bool(const BlockPtr&)>& visit) const;

  // Number of distinct authors with at least one block at `round` (the
  // quorum measure used for round advancement and coin opening).
  std::uint32_t distinct_authors_at(Round round) const;

  // Highest round with at least one block (0 at genesis).
  Round highest_round() const { return highest_round_; }

  std::size_t block_count() const { return by_digest_.size(); }

  // True if every parent reference of `block` is present.
  bool parents_present(const Block& block) const;

  // Inserts a block whose parents are all present. Returns false (no-op) for
  // duplicates. Precondition failure (missing parent) throws
  // std::logic_error: it indicates a synchronizer bug, not bad input.
  bool insert(BlockPtr block);

  // Is `old_ref` in the causal history of `from` (inclusive of `from`)?
  // Breadth-first over parents, pruned by round.
  bool is_link(const BlockRef& old_ref, const Block& from) const;

  // Drops all blocks with round < `round`. The caller must only prune
  // history that is already delivered (or will never be queried).
  void prune_below(Round round);
  Round pruned_below() const { return pruned_below_; }

 private:
  struct RoundSlots {
    std::vector<std::vector<BlockPtr>> by_author;  // size n
    std::uint32_t distinct_authors = 0;
  };

  std::uint32_t n_;
  std::unordered_map<Digest, BlockPtr, DigestHasher> by_digest_;
  std::map<Round, RoundSlots> rounds_;
  Round highest_round_ = 0;
  Round pruned_below_ = 0;
  std::vector<BlockPtr> empty_;
};

}  // namespace mahimahi
