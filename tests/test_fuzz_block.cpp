// Robustness fuzzing of the block wire codec and validation pipeline.
//
// Blocks are the only message type the protocol accepts from the network
// (§2.3), so the deserialize -> validate pipeline is the entire attack
// surface for malformed input. Properties:
//   * any single bit flip is caught — either the decoder throws SerdeError
//     or the decoded block fails signature validation (every byte of the
//     wire image except the trailing signature is covered by the digest,
//     and the signature signs the digest);
//   * any truncation or extension of the wire image throws;
//   * arbitrary random bytes never crash the decoder;
//   * WAL records are CRC-framed, so flipping any byte of a record makes
//     replay stop at a clean prefix instead of delivering garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "types/validation.h"
#include "wal/wal.h"

namespace mahimahi {
namespace {

class BlockFuzz : public ::testing::Test {
 protected:
  static Block make_subject(const Committee::TestSetup& setup) {
    std::vector<BlockRef> genesis;
    for (ValidatorId v = 0; v < setup.committee.size(); ++v) {
      genesis.push_back(Block::genesis(v, setup.committee.coin()).ref());
    }
    TxBatch batch;
    batch.id = 77;
    batch.count = 3;
    batch.payload = Bytes{1, 2, 3, 4, 5, 6, 7, 8};
    return Block::make(1, 1, std::move(genesis), {batch},
                       setup.committee.coin().share(1, 1),
                       setup.keypairs[1].private_key);
  }

  BlockFuzz()
      : setup_(Committee::make_test(4)),
        block_(make_subject(setup_)),
        wire_(block_.serialize()) {}

  // True when the mutated image is rejected somewhere in the pipeline.
  bool rejected(const Bytes& image) const {
    try {
      const Block decoded = Block::deserialize({image.data(), image.size()});
      return validate_block(decoded, setup_.committee) != BlockValidity::kValid;
    } catch (const serde::SerdeError&) {
      return true;
    }
  }

  Committee::TestSetup setup_;
  Block block_;
  Bytes wire_;
};

TEST_F(BlockFuzz, PristineImageRoundTripsAndValidates) {
  const Block decoded = Block::deserialize({wire_.data(), wire_.size()});
  EXPECT_EQ(decoded.digest(), block_.digest());
  EXPECT_EQ(validate_block(decoded, setup_.committee), BlockValidity::kValid);
}

TEST_F(BlockFuzz, EveryBitFlipIsRejected) {
  // Exhaustive over bytes, one bit per byte (rotating), plus all 8 bits for
  // a random sample of bytes — full 8x exhaustive would be slow for no
  // extra information.
  for (std::size_t i = 0; i < wire_.size(); ++i) {
    Bytes mutated = wire_;
    mutated[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_TRUE(rejected(mutated)) << "bit flip at byte " << i << " accepted";
  }
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t i = rng.uniform(wire_.size());
    Bytes mutated = wire_;
    mutated[i] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    EXPECT_TRUE(rejected(mutated)) << "bit flip at byte " << i;
  }
}

TEST_F(BlockFuzz, EveryTruncationThrows) {
  for (std::size_t length = 0; length < wire_.size(); ++length) {
    Bytes truncated(wire_.begin(), wire_.begin() + length);
    EXPECT_THROW(Block::deserialize({truncated.data(), truncated.size()}),
                 serde::SerdeError)
        << "truncation to " << length << " bytes parsed";
  }
}

TEST_F(BlockFuzz, TrailingGarbageThrows) {
  for (const std::size_t extra : {std::size_t{1}, std::size_t{7}, std::size_t{256}}) {
    Bytes extended = wire_;
    extended.insert(extended.end(), extra, 0xAB);
    EXPECT_THROW(Block::deserialize({extended.data(), extended.size()}),
                 serde::SerdeError);
  }
}

TEST_F(BlockFuzz, RandomBuffersNeverCrash) {
  Rng rng(31337);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.uniform(512));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_TRUE(rejected(junk)) << "random buffer accepted as a valid block";
  }
}

TEST_F(BlockFuzz, ByteSwapsAreRejected) {
  // Transpositions model reordering corruption rather than flips.
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = wire_;
    const std::size_t i = rng.uniform(mutated.size());
    const std::size_t j = rng.uniform(mutated.size());
    if (mutated[i] == mutated[j]) continue;  // no-op swap
    std::swap(mutated[i], mutated[j]);
    EXPECT_TRUE(rejected(mutated)) << "swap " << i << "<->" << j;
  }
}

// --------------------------------------------------------------------------
// WAL corruption sweep
// --------------------------------------------------------------------------

class WalCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalCorruption, FlipAnywhereYieldsCleanPrefix) {
  const auto setup = Committee::make_test(4);
  const auto path = std::filesystem::temp_directory_path() /
                    ("mahi_fuzz_wal_" + std::to_string(::getpid()) + "_" +
                     std::to_string(GetParam()) + ".wal");
  std::filesystem::remove(path);

  // Write 20 blocks.
  std::vector<Digest> digests;
  {
    FileWal wal(path.string());
    std::vector<BlockRef> parents;
    for (ValidatorId v = 0; v < 4; ++v) {
      parents.push_back(Block::genesis(v, setup.committee.coin()).ref());
    }
    BlockRef own_previous = parents[0];
    for (Round r = 1; r <= 20; ++r) {
      auto block = Block::make(0, r, parents, {}, setup.committee.coin().share(0, r),
                               setup.keypairs[0].private_key);
      digests.push_back(block.digest());
      wal.append_block(block, true);
      // Chain rounds through the own block so refs stay structurally valid.
      own_previous = block.ref();
      parents[0] = own_previous;
    }
    wal.sync();
  }

  // Flip one random byte.
  const auto size = std::filesystem::file_size(path);
  Rng rng(GetParam());
  const std::uint64_t offset = rng.uniform(size);
  {
    std::FILE* file = std::fopen(path.string().c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, static_cast<long>(offset), SEEK_SET);
    const int original = std::fgetc(file);
    std::fseek(file, static_cast<long>(offset), SEEK_SET);
    std::fputc((original ^ 0x40) & 0xFF, file);
    std::fclose(file);
  }

  // Replay must deliver a clean prefix of the original digests: no garbage
  // block, no crash, and everything before the corrupted record intact.
  std::vector<Digest> replayed;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool) { replayed.push_back(block->digest()); };
  visitor.on_commit = [](SlotId) {};
  const auto result = FileWal::replay(path.string(), visitor,
                                      /*truncate_corrupt_tail=*/false);

  ASSERT_LE(replayed.size(), digests.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], digests[i]) << "replayed record " << i << " differs";
  }
  // A flip inside a record's framing or payload costs at least that record.
  EXPECT_TRUE(result.corrupt_tail || replayed.size() == digests.size());

  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(RandomOffsets, WalCorruption,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace mahimahi
