// Unit tests for the common utilities: hex, CRC-32, RNG, byte helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/hex.h"
#include "common/rng.h"
#include "common/time.h"

namespace mahimahi {
namespace {

TEST(Hex, EncodesKnownBytes) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex({data.data(), data.size()}), "0001abff");
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex({}), "");
  const auto decoded = from_hex("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Hex, RoundTrips) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const auto decoded = from_hex(to_hex({data.data(), data.size()}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Hex, AcceptsUppercase) {
  const auto decoded = from_hex("ABCDEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(to_hex({decoded->data(), decoded->size()}), "abcdef");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
  EXPECT_FALSE(from_hex(" 1").has_value());
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32(as_bytes_view("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  std::uint32_t state = crc32_init();
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t take = std::min<std::size_t>(7, data.size() - i);
    state = crc32_update(state, {data.data() + i, take});
  }
  EXPECT_EQ(crc32_finish(state), crc32({data.data(), data.size()}));
}

TEST(Crc32, DetectsSingleBitFlips) {
  Bytes data = to_bytes("some WAL record payload");
  const std::uint32_t original = crc32({data.data(), data.size()});
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    data[byte] ^= 0x01;
    EXPECT_NE(crc32({data.data(), data.size()}), original) << "flip at " << byte;
    data[byte] ^= 0x01;
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / kSamples, 40.0, 1.5);
}

TEST(Rng, GaussianRoughlyStandard) {
  Rng rng(23);
  double sum = 0, sum_sq = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next_u64() == child.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Bytes, CtEqualBasics) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal({a.data(), a.size()}, {b.data(), b.size()}));
  EXPECT_FALSE(ct_equal({a.data(), a.size()}, {c.data(), c.size()}));
  EXPECT_FALSE(ct_equal({a.data(), a.size()}, {d.data(), d.size()}));
}

TEST(Time, ConversionHelpers) {
  EXPECT_EQ(millis(1500), 1'500'000);
  EXPECT_EQ(seconds(2.5), 2'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(250'000), 0.25);
}

}  // namespace
}  // namespace mahimahi
