// Synchronizer unit tests: causal-completeness enforcement (§2.3, Lemma 8).
//
// The synchronizer is what makes an uncertified DAG usable: blocks are
// admitted only once their full ancestry is present, missing ancestors are
// reported for fetching, and out-of-order arrivals cascade. Also covers the
// GC interaction: refs below the DAG's pruned horizon count as satisfied.
#include <gtest/gtest.h>

#include <set>

#include "sim/dag_builder.h"
#include "validator/synchronizer.h"
#include "validator/validator.h"

namespace mahimahi {
namespace {

class SynchronizerTest : public ::testing::Test {
 protected:
  SynchronizerTest() : builder_(4), dag_(builder_.committee()) {}

  // Builds rounds 1..rounds fully connected inside the builder (the
  // synchronizer under test gets blocks only when we offer them).
  void build(Round rounds) { builder_.build_fully_connected(rounds); }

  BlockPtr block_at(Round round, ValidatorId author) {
    return builder_.dag().slot(round, author).front();
  }

  DagBuilder builder_;  // source of valid blocks
  Dag dag_;             // the DAG under synchronization
};

TEST_F(SynchronizerTest, InOrderOfferInsertsImmediately) {
  build(2);
  Synchronizer sync(dag_, 1000);
  const auto outcome = sync.offer(block_at(1, 0));
  ASSERT_EQ(outcome.inserted.size(), 1u);
  EXPECT_TRUE(outcome.missing.empty());
  EXPECT_TRUE(dag_.contains(block_at(1, 0)->digest()));
}

TEST_F(SynchronizerTest, OutOfOrderOfferParksAndReportsMissing) {
  build(2);
  Synchronizer sync(dag_, 1000);
  const auto block = block_at(2, 1);
  const auto outcome = sync.offer(block);
  EXPECT_TRUE(outcome.inserted.empty());
  // All four round-1 parents are unknown (own-previous + 2f+1 quorum).
  EXPECT_GE(outcome.missing.size(), 3u);
  EXPECT_TRUE(sync.is_pending(block->digest()));
  EXPECT_FALSE(dag_.contains(block->digest()));
}

TEST_F(SynchronizerTest, ArrivingParentsCascadeInCausalOrder) {
  build(3);
  Synchronizer sync(dag_, 1000);
  // Offer a round-3 block first, then round-2, then the round-1 ancestry;
  // the last arrivals must unblock everything, parents before children.
  sync.offer(block_at(3, 0));
  sync.offer(block_at(2, 0));
  sync.offer(block_at(2, 1));
  sync.offer(block_at(2, 2));
  sync.offer(block_at(2, 3));

  std::vector<BlockPtr> inserted;
  for (ValidatorId v = 0; v < 4; ++v) {
    const auto outcome = sync.offer(block_at(1, v));
    inserted.insert(inserted.end(), outcome.inserted.begin(), outcome.inserted.end());
  }
  // Everything (4 + 4 + 1 blocks) is now in the DAG.
  EXPECT_EQ(inserted.size(), 9u);
  EXPECT_TRUE(dag_.contains(block_at(3, 0)->digest()));
  // Causal order within the cascade: every block's parents precede it.
  std::set<Digest> seen;
  for (const auto& block : inserted) {
    for (const auto& parent : block->parents()) {
      if (parent.round == 0) continue;  // genesis pre-exists
      EXPECT_TRUE(seen.contains(parent.digest))
          << block->ref().to_string() << " inserted before its parent";
    }
    seen.insert(block->digest());
  }
}

TEST_F(SynchronizerTest, DuplicateOffersAreNoOps) {
  build(2);
  Synchronizer sync(dag_, 1000);
  EXPECT_EQ(sync.offer(block_at(1, 0)).inserted.size(), 1u);
  EXPECT_TRUE(sync.offer(block_at(1, 0)).inserted.empty());

  const auto parked = block_at(2, 1);
  EXPECT_FALSE(sync.offer(parked).missing.empty());
  EXPECT_TRUE(sync.offer(parked).missing.empty()) << "re-offer must not re-request";
}

TEST_F(SynchronizerTest, PendingBufferIsBounded) {
  build(3);
  Synchronizer sync(dag_, /*max_pending=*/2);
  EXPECT_TRUE(sync.offer(block_at(2, 0)).inserted.empty());
  EXPECT_TRUE(sync.offer(block_at(2, 1)).inserted.empty());
  EXPECT_EQ(sync.pending_count(), 2u);
  // Third parked offer is dropped, not queued.
  sync.offer(block_at(2, 2));
  EXPECT_EQ(sync.pending_count(), 2u);
  EXPECT_FALSE(sync.is_pending(block_at(2, 2)->digest()));
}

TEST_F(SynchronizerTest, OutstandingListsEachMissingRefOnce) {
  build(2);
  Synchronizer sync(dag_, 1000);
  // Two round-2 blocks share round-1 parents; refs must not duplicate.
  sync.offer(block_at(2, 0));
  sync.offer(block_at(2, 1));
  const auto outstanding = sync.outstanding();
  std::set<Digest> unique;
  for (const auto& ref : outstanding) {
    EXPECT_TRUE(unique.insert(ref.digest).second) << "duplicate outstanding ref";
  }
  EXPECT_EQ(unique.size(), 4u);  // the four round-1 blocks
}

TEST_F(SynchronizerTest, PruneBelowSatisfiesSubHorizonRefsAndUnblocks) {
  build(6);
  Synchronizer sync(dag_, 1000);
  // Fill the DAG up to round 4 except validator 3's round-4 block.
  for (Round r = 1; r <= 4; ++r) {
    for (ValidatorId v = 0; v < 4; ++v) {
      if (r == 4 && v == 3) continue;
      sync.offer(block_at(r, v));
    }
  }
  // A round-5 block referencing the missing round-4 block parks.
  const auto child = block_at(5, 3);
  EXPECT_TRUE(sync.offer(child).inserted.empty());
  ASSERT_TRUE(sync.is_pending(child->digest()));

  // GC moves the horizon past round 4: the missing ref counts as satisfied
  // and the parked block inserts (its round-4 parents are exempt now).
  dag_.prune_below(5);
  const auto unblocked = sync.prune_below(5);
  ASSERT_EQ(unblocked.size(), 1u);
  EXPECT_EQ(unblocked[0]->digest(), child->digest());
  EXPECT_TRUE(dag_.contains(child->digest()));
  EXPECT_FALSE(sync.is_pending(child->digest()));
}

TEST_F(SynchronizerTest, PruneBelowDropsStalePendingBlocks) {
  build(3);
  Synchronizer sync(dag_, 1000);
  // Park a round-2 block (round-1 ancestry unknown).
  const auto stale = block_at(2, 0);
  sync.offer(stale);
  ASSERT_TRUE(sync.is_pending(stale->digest()));

  // The horizon moves past the parked block itself: it is dropped, not
  // inserted (it can never be delivered).
  dag_.prune_below(3);
  const auto unblocked = sync.prune_below(3);
  EXPECT_TRUE(unblocked.empty());
  EXPECT_FALSE(sync.is_pending(stale->digest()));
  EXPECT_FALSE(dag_.contains(stale->digest()));
}

TEST_F(SynchronizerTest, AncestorBelowPeerHorizonStaysPendingForever) {
  // The flip side of the GC exemption: OUR horizon exempts refs, but a ref
  // below a PEER's horizon (while ours is still 0) is just a missing parent
  // that no fetch will ever satisfy — the peer deleted it. The block parks,
  // its refs stay outstanding, and nothing ages out: the synchronizer has no
  // timeout and no give-up. This pins the stall that snapshot catch-up
  // (checkpoint/, Actions::horizon_notices) exists to break.
  build(4);
  Synchronizer sync(dag_, 1000);
  const auto block = block_at(3, 0);
  sync.offer(block);
  ASSERT_TRUE(sync.is_pending(block->digest()));
  const std::size_t outstanding = sync.outstanding().size();
  ASSERT_GT(outstanding, 0u);
  // No matter how often the driver retries, the picture never changes.
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_TRUE(sync.offer(block).missing.empty()) << "re-offer must not re-request";
    EXPECT_TRUE(sync.is_pending(block->digest()));
    EXPECT_EQ(sync.outstanding().size(), outstanding);
  }
}

TEST(SynchronizerCatchup, CoreRetriesForeverBelowPeerHorizonWithoutSnapshots) {
  // Two-core pin of today's catch-up failure mode, end to end: a validator
  // whose ancestry walk descended to a peer's GC horizon keeps re-fetching
  // sub-horizon refs on every tick — the peer serves nothing (it pruned
  // them), the walk never completes, the committer head never moves. Only
  // the horizon notice (dropped here on purpose, modeling pre-checkpoint
  // behavior) leads out of the loop.
  Committee::TestSetup setup = Committee::make_test(4);
  DagBuilder builder(4);
  builder.build_fully_connected(40);

  ValidatorConfig config;
  config.observer = true;
  config.committer.gc_depth = 8;
  config.validation.verify_signature = false;
  config.validation.verify_coin_share = false;
  ValidatorCore ahead(setup.committee, setup.keypairs[0].private_key, config);
  ValidatorCore late(setup.committee, setup.keypairs[1].private_key, config);

  for (Round r = 1; r <= 40; ++r) {
    for (ValidatorId v = 0; v < 4; ++v) {
      const BlockPtr block = builder.dag().slot(r, v).front();
      ahead.on_block(block, v, 0);
    }
  }
  const Round horizon = ahead.dag().pruned_below();
  ASSERT_GT(horizon, 1u);

  // The late validator holds a block at the horizon; its missing parents are
  // below it. Drive fetch → (empty) response → tick retry for many cycles.
  Actions actions = late.on_block(builder.dag().slot(horizon, 0).front(), 0, 0);
  TimeMicros now = 0;
  std::uint64_t retries = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (const auto& request : actions.fetch_requests) {
      ++retries;
      const Actions reply = ahead.on_fetch_request(request.refs, 1, now);
      EXPECT_TRUE(reply.responses.empty()) << "peer cannot serve pruned history";
      EXPECT_FALSE(reply.horizon_notices.empty()) << "peer must point at its horizon";
      // Pre-checkpoint behavior: the notice goes nowhere.
    }
    now += config.fetch_retry_delay + 1;
    actions = late.on_tick(now);
  }
  EXPECT_GT(retries, 5u) << "the walk must keep retrying";
  EXPECT_EQ(late.committer().next_pending_slot().round, 1u) << "no progress, ever";
  EXPECT_TRUE(late.dag().get(builder.dag().slot(horizon, 0).front()->digest()) ==
              nullptr)
      << "the parked block can never insert";
}

TEST_F(SynchronizerTest, OffersBelowHorizonReportNoSubHorizonMissing) {
  build(4);
  Synchronizer sync(dag_, 1000);
  dag_.prune_below(4);
  // A round-4 block whose entire ancestry is below the horizon: nothing to
  // fetch, inserts immediately via the GC exemption.
  const auto block = block_at(4, 1);
  const auto outcome = sync.offer(block);
  for (const auto& ref : outcome.missing) {
    EXPECT_GE(ref.round, 3u) << "requested a ref below the GC horizon";
  }
  ASSERT_EQ(outcome.inserted.size(), 1u);
  EXPECT_TRUE(dag_.contains(block->digest()));
}

}  // namespace
}  // namespace mahimahi
