// Ed25519 tests: RFC 8032 vectors, independently generated cross-check
// vectors, randomized sign/verify round-trips, and rejection paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/hex.h"
#include "crypto/curve25519.h"
#include "crypto/ed25519.h"
#include "crypto/sha512.h"

namespace mahimahi::crypto {
namespace {

std::array<std::uint8_t, 32> seed_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  std::array<std::uint8_t, 32> out{};
  std::copy(bytes->begin(), bytes->end(), out.begin());
  return out;
}

Ed25519Signature sig_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  Ed25519Signature out;
  std::copy(bytes->begin(), bytes->end(), out.bytes.begin());
  return out;
}

std::string hex_of(BytesView view) { return to_hex(view); }

TEST(Ed25519, Rfc8032Vector1EmptyMessage) {
  const auto kp = ed25519_keypair_from_seed(
      seed_from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  EXPECT_EQ(hex_of({kp.public_key.bytes.data(), 32}),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const auto sig = ed25519_sign(kp.private_key, {});
  EXPECT_EQ(hex_of({sig.bytes.data(), 64}),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33b"
            "acc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify(kp.public_key, {}, sig));
}

TEST(Ed25519, Rfc8032Vector2OneByteMessage) {
  const auto kp = ed25519_keypair_from_seed(
      seed_from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
  EXPECT_EQ(hex_of({kp.public_key.bytes.data(), 32}),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const Bytes msg = {0x72};
  const auto sig = ed25519_sign(kp.private_key, {msg.data(), msg.size()});
  EXPECT_EQ(hex_of({sig.bytes.data(), 64}),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e1599"
            "6e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(ed25519_verify(kp.public_key, {msg.data(), msg.size()}, sig));
}

struct CrossCheckVector {
  const char* seed;
  const char* pub;
  const char* msg;
  const char* sig;
};

// Generated with an independent reference implementation (see DESIGN.md).
constexpr CrossCheckVector kCrossChecks[] = {
    {"d36e527b204b8b1139f7344431ead1badfcee4f0b8cef7c5ba7904f576fb2ca4",
     "3ead76439cc73f35baa63357b6f0de2e8e545863cfc38f9e916da21d22d70152", "message-0",
     "8b0e495875a6545b81b14c4aaf43dac77432dba2e147f0637c44b628bf6ffe39c8f98485f67fc1699"
     "6c75c72e1caf2fc0803f0ee49e171d0abc2693e470ff403"},
    {"082e892f413046b383efc16f5c543cf062bbb08b644acf499b984939899ff059",
     "b895b33bb5224080b8465508b068001e3396f2ff20def63d7901b76f8bf99dca", "message-1",
     "14d75910f76e076b7413a89544a72903f68ea0ec652cecaa46647bc60595975c9eef8a5e3c3226339"
     "c56de9c39161ffac3582e4a0fdbc500271a97b4352ab20a"},
    {"84d92a0051127417a1a6524cfda1b609838ec9e1b15de188df06c3a27507ae0c",
     "8f69f5cd73d5dab2c2d0dc78da45efcf8bfa1a58df50ca4d44f81e165b6cc2bf", "message-2",
     "d1faa824465fc536a4995cdbd84fead8877b3fa27617477972013b3b00e1c76e1a085a5263698b8dd"
     "d1c7be89179118d70d41f77afdb8cf563223ec5c475810e"},
};

class Ed25519CrossCheck : public ::testing::TestWithParam<CrossCheckVector> {};

TEST_P(Ed25519CrossCheck, MatchesReferenceImplementation) {
  const auto& vec = GetParam();
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(vec.seed));
  EXPECT_EQ(hex_of({kp.public_key.bytes.data(), 32}), vec.pub);
  const auto sig = ed25519_sign(kp.private_key, as_bytes_view(vec.msg));
  EXPECT_EQ(hex_of({sig.bytes.data(), 64}), vec.sig);
  EXPECT_TRUE(ed25519_verify(kp.public_key, as_bytes_view(vec.msg), sig));
}

INSTANTIATE_TEST_SUITE_P(Vectors, Ed25519CrossCheck, ::testing::ValuesIn(kCrossChecks));

class Ed25519RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Ed25519RoundTrip, SignVerify) {
  std::array<std::uint8_t, 32> seed{};
  seed[0] = static_cast<std::uint8_t>(GetParam());
  seed[7] = 0xa5;
  const auto kp = ed25519_keypair_from_seed(seed);
  const std::string msg = "round trip message #" + std::to_string(GetParam());
  const auto sig = ed25519_sign(kp.private_key, as_bytes_view(msg));
  EXPECT_TRUE(ed25519_verify(kp.public_key, as_bytes_view(msg), sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ed25519RoundTrip, ::testing::Range(0, 16));

TEST(Ed25519, RejectsTamperedMessage) {
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  const auto sig = ed25519_sign(kp.private_key, as_bytes_view("payload"));
  EXPECT_FALSE(ed25519_verify(kp.public_key, as_bytes_view("Payload"), sig));
  EXPECT_FALSE(ed25519_verify(kp.public_key, as_bytes_view("payload "), sig));
  EXPECT_FALSE(ed25519_verify(kp.public_key, {}, sig));
}

TEST(Ed25519, RejectsEveryTamperedSignatureBit) {
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
  auto sig = ed25519_sign(kp.private_key, as_bytes_view("bit flip probe"));
  for (std::size_t byte = 0; byte < 64; byte += 5) {
    sig.bytes[byte] ^= 0x40;
    EXPECT_FALSE(ed25519_verify(kp.public_key, as_bytes_view("bit flip probe"), sig))
        << "byte " << byte;
    sig.bytes[byte] ^= 0x40;
  }
}

TEST(Ed25519, RejectsWrongKey) {
  std::array<std::uint8_t, 32> seed_a{}, seed_b{};
  seed_b[0] = 1;
  const auto kp_a = ed25519_keypair_from_seed(seed_a);
  const auto kp_b = ed25519_keypair_from_seed(seed_b);
  const auto sig = ed25519_sign(kp_a.private_key, as_bytes_view("msg"));
  EXPECT_FALSE(ed25519_verify(kp_b.public_key, as_bytes_view("msg"), sig));
}

TEST(Ed25519, RejectsNonCanonicalScalar) {
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  auto sig = ed25519_sign(kp.private_key, as_bytes_view("msg"));
  // Force the scalar half >= L by setting its top bits.
  sig.bytes[63] |= 0xf0;
  EXPECT_FALSE(ed25519_verify(kp.public_key, as_bytes_view("msg"), sig));
}

TEST(Ed25519, RejectsOffCurvePublicKey) {
  Ed25519PublicKey bogus;
  bogus.bytes.fill(0x12);  // overwhelmingly likely off-curve y
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  const auto sig = ed25519_sign(kp.private_key, as_bytes_view("msg"));
  // Either decompression fails or verification fails; it must not accept.
  EXPECT_FALSE(ed25519_verify(bogus, as_bytes_view("msg"), sig));
}

TEST(Ed25519, DeterministicSignatures) {
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(
      "d36e527b204b8b1139f7344431ead1badfcee4f0b8cef7c5ba7904f576fb2ca4"));
  const auto s1 = ed25519_sign(kp.private_key, as_bytes_view("same message"));
  const auto s2 = ed25519_sign(kp.private_key, as_bytes_view("same message"));
  EXPECT_EQ(s1, s2);
}

TEST(Ed25519, DistinctSeedsDistinctKeys) {
  std::array<std::uint8_t, 32> seed{};
  const auto base = ed25519_keypair_from_seed(seed);
  for (int i = 1; i < 8; ++i) {
    seed[31] = static_cast<std::uint8_t>(i);
    EXPECT_NE(ed25519_keypair_from_seed(seed).public_key, base.public_key);
  }
}

TEST(Ed25519, LargeMessage) {
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(
      "082e892f413046b383efc16f5c543cf062bbb08b644acf499b984939899ff059"));
  const std::string big(100000, 'B');
  const auto sig = ed25519_sign(kp.private_key, as_bytes_view(big));
  EXPECT_TRUE(ed25519_verify(kp.public_key, as_bytes_view(big), sig));
}

// --- Batch verification ------------------------------------------------------

namespace {

struct SignedMessage {
  Ed25519Keypair keypair;
  std::string message;
  Ed25519Signature signature;
};

SignedMessage make_signed(std::uint8_t key_tag, std::string message) {
  std::array<std::uint8_t, 32> seed{};
  seed[0] = key_tag;
  seed[17] = 0xa5;
  SignedMessage out;
  out.keypair = ed25519_keypair_from_seed(seed);
  out.message = std::move(message);
  out.signature = ed25519_sign(out.keypair.private_key, as_bytes_view(out.message));
  return out;
}

std::vector<Ed25519BatchItem> as_items(const std::vector<SignedMessage>& signed_messages) {
  std::vector<Ed25519BatchItem> items;
  for (const auto& s : signed_messages) {
    items.push_back({s.keypair.public_key, as_bytes_view(s.message), s.signature});
  }
  return items;
}

}  // namespace

TEST(Ed25519Batch, AcceptsValidBatchAcrossDistinctAndRepeatedKeys) {
  std::vector<SignedMessage> signed_messages;
  // 12 signatures over 4 keys — the committee shape batch grouping exploits.
  for (int i = 0; i < 12; ++i) {
    signed_messages.push_back(
        make_signed(static_cast<std::uint8_t>(i % 4 + 1), "block-" + std::to_string(i)));
  }
  EXPECT_TRUE(ed25519_verify_batch(as_items(signed_messages)));
  const auto each = ed25519_verify_each(as_items(signed_messages));
  EXPECT_TRUE(std::all_of(each.begin(), each.end(), [](std::uint8_t ok) { return ok; }));
}

TEST(Ed25519Batch, EmptyAndSingletonBatches) {
  EXPECT_TRUE(ed25519_verify_batch({}));
  const auto one = make_signed(1, "solo");
  EXPECT_TRUE(ed25519_verify_batch(as_items({one})));
}

TEST(Ed25519Batch, RejectsBatchWithOneForgeryAndPinpointsIt) {
  std::vector<SignedMessage> signed_messages;
  for (int i = 0; i < 8; ++i) {
    signed_messages.push_back(make_signed(static_cast<std::uint8_t>(i + 1), "m" + std::to_string(i)));
  }
  signed_messages[5].signature.bytes[10] ^= 0x40;  // corrupt R of one item

  EXPECT_FALSE(ed25519_verify_batch(as_items(signed_messages)));
  const auto each = ed25519_verify_each(as_items(signed_messages));
  for (std::size_t i = 0; i < each.size(); ++i) {
    EXPECT_EQ(each[i] != 0, i != 5) << "item " << i;
  }
}

TEST(Ed25519Batch, RejectsWrongMessageAndWrongKey) {
  auto a = make_signed(1, "first");
  auto b = make_signed(2, "second");
  // Swap signatures: both individually invalid.
  std::swap(a.signature, b.signature);
  EXPECT_FALSE(ed25519_verify_batch(as_items({a, b})));
  const auto each = ed25519_verify_each(as_items({a, b}));
  EXPECT_FALSE(each[0]);
  EXPECT_FALSE(each[1]);
}

TEST(Ed25519Batch, RejectsNonCanonicalScalar) {
  auto good = make_signed(1, "canonical");
  auto bad = make_signed(2, "non-canonical");
  // s >= L: set the top bits so the strict decode fails.
  std::fill(bad.signature.bytes.begin() + 32, bad.signature.bytes.end(), 0xff);
  EXPECT_FALSE(ed25519_verify_batch(as_items({good, bad})));
  const auto each = ed25519_verify_each(as_items({good, bad}));
  EXPECT_TRUE(each[0]);
  EXPECT_FALSE(each[1]);
}

// Consensus-safety regression: a signature whose R carries a small-order
// torsion component must get the SAME verdict from single verification and
// from every batch composition. A cofactorless batch check fails this — the
// torsion defect z_i*T vanishes whenever the random 128-bit coefficient is
// even, so half of all batch groupings accept what the other half reject,
// and validators diverge based on how their driver happened to batch.
TEST(Ed25519Batch, TorsionComponentVerdictIsBatchInvariant) {
  const auto kp = ed25519_keypair_from_seed(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  const std::string message = "torsion probe";
  const auto honest = ed25519_sign(kp.private_key, as_bytes_view(message));

  // R' = R + T where T = (0, -1) has order 2.
  std::uint8_t t_bytes[32];
  std::fill(t_bytes, t_bytes + 32, 0xff);
  t_bytes[0] = 0xec;  // p - 1 in little-endian: y = -1, sign(x) = 0
  t_bytes[31] = 0x7f;
  const auto t_point = curve::ge_decompress(t_bytes);
  ASSERT_TRUE(t_point.has_value());
  const auto r_point = curve::ge_decompress(honest.bytes.data());
  ASSERT_TRUE(r_point.has_value());

  Ed25519Signature forged;
  curve::ge_compress(forged.bytes.data(), curve::ge_add(*r_point, *t_point));

  // Recompute s' = r + k'*a for the new challenge k' = H(R'||A||M), using
  // the RFC 8032 key expansion (the "attacker" here is the signer itself,
  // publishing a mangled-but-consistent signature).
  const auto h = Sha512::hash({kp.private_key.seed.data(), kp.private_key.seed.size()});
  std::uint8_t clamped[32];
  std::copy(h.data(), h.data() + 32, clamped);
  clamped[0] &= 0xf8;
  clamped[31] &= 0x7f;
  clamped[31] |= 0x40;
  const auto a = curve::sc_from_bytes32(clamped);
  Sha512 r_hash;
  r_hash.update({h.data() + 32, 32});
  r_hash.update(as_bytes_view(message));
  const auto r = curve::sc_from_bytes64(r_hash.finish().data());
  Sha512 k_hash;
  k_hash.update({forged.bytes.data(), 32});
  k_hash.update({kp.public_key.bytes.data(), 32});
  k_hash.update(as_bytes_view(message));
  const auto k = curve::sc_from_bytes64(k_hash.finish().data());
  curve::sc_to_bytes(forged.bytes.data() + 32, curve::sc_mul_add(k, a, r));

  const bool single_verdict =
      ed25519_verify(kp.public_key, as_bytes_view(message), forged);
  // Cofactored verification accepts: [8]T = O annihilates the defect.
  EXPECT_TRUE(single_verdict);

  // Every batch composition must agree with the single verdict.
  std::vector<SignedMessage> companions;
  for (int i = 0; i < 7; ++i) {
    companions.push_back(make_signed(static_cast<std::uint8_t>(i + 1),
                                     "companion-" + std::to_string(i)));
  }
  for (std::size_t companion_count : {0u, 1u, 3u, 7u}) {
    std::vector<Ed25519BatchItem> items;
    items.push_back({kp.public_key, as_bytes_view(message), forged});
    for (std::size_t i = 0; i < companion_count; ++i) {
      items.push_back({companions[i].keypair.public_key,
                       as_bytes_view(companions[i].message), companions[i].signature});
    }
    EXPECT_EQ(ed25519_verify_batch(items), single_verdict)
        << "batch of " << items.size();
    const auto each = ed25519_verify_each(items);
    EXPECT_EQ(each[0] != 0, single_verdict) << "batch of " << items.size();
  }
}

TEST(Ed25519Batch, AgreesWithSingleVerificationOnMixedBatches) {
  // Randomized mixes of valid and corrupted signatures: the batch path must
  // agree with per-item ed25519_verify everywhere.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<SignedMessage> signed_messages;
    std::vector<bool> expected;
    for (int i = 0; i < 6; ++i) {
      auto s = make_signed(static_cast<std::uint8_t>((trial + i) % 3 + 1),
                           "t" + std::to_string(trial) + "-" + std::to_string(i));
      const bool corrupt = ((trial * 7 + i * 3) % 5) == 0;
      if (corrupt) s.signature.bytes[(trial + i) % 64] ^= 0x01;
      // Corruption may still rarely yield the same point encoding? No — any
      // bit flip in R or s changes the (strictly decoded) values; record the
      // ground truth from the single verifier instead of assuming.
      expected.push_back(
          ed25519_verify(s.keypair.public_key, as_bytes_view(s.message), s.signature));
      signed_messages.push_back(std::move(s));
    }
    const auto each = ed25519_verify_each(as_items(signed_messages));
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(each[i] != 0, expected[i]) << "trial " << trial << " item " << i;
    }
  }
}

}  // namespace
}  // namespace mahimahi::crypto
