// Deterministic garbage collection (CommitterOptions::gc_depth).
//
// GC must never change what is agreed, only what is retained:
//   * the delivery cut is deterministic — a committed leader at round R
//     delivers only history with round >= R - gc_depth, so validators with
//     different pruning states (or none) produce identical sequences as
//     long as they share gc_depth;
//   * pruning below the consumed-slot head minus gc_depth bounds the DAG's
//     memory without perturbing later decisions;
//   * the synchronizer treats sub-horizon parents as satisfied, so blocks
//     arriving after a GC pass still insert;
//   * full-cluster simulations with GC hold agreement and throughput while
//     keeping per-validator block counts flat.
#include <gtest/gtest.h>

#include <set>

#include "core/committer.h"
#include "sim/dag_builder.h"
#include "sim/harness.h"

namespace mahimahi {
namespace {

// Feeds `builder`'s DAG round by round into a fresh Dag + Committer,
// optionally pruning to the GC horizon after every consumption step.
// Returns the delivered sequence.
std::vector<BlockRef> run_incremental(const DagBuilder& builder,
                                      const CommitterOptions& options,
                                      bool prune) {
  Dag dag(builder.committee());
  Committer committer(dag, builder.committee(), options);
  std::vector<BlockRef> delivered;
  for (Round r = 1; r <= builder.dag().highest_round(); ++r) {
    for (const auto& block : builder.dag().blocks_at(r)) dag.insert(block);
    for (const auto& sub_dag : committer.try_commit()) {
      for (const auto& block : sub_dag.blocks) delivered.push_back(block->ref());
    }
    if (prune && options.gc_depth > 0) {
      const Round head = committer.next_pending_slot().round;
      if (head > options.gc_depth) {
        const Round horizon = head - options.gc_depth;
        dag.prune_below(horizon);
        committer.prune_below(horizon);
      }
    }
  }
  return delivered;
}

TEST(Gc, PrunedAndUnprunedValidatorsDeliverIdentically) {
  DagBuilder builder(4, 7);
  Rng rng(3);
  for (Round r = 1; r <= 40; ++r) builder.add_random_network_round(r, rng);

  CommitterOptions options = mahi_mahi_5(2);
  options.gc_depth = 8;

  const auto pruned = run_incremental(builder, options, /*prune=*/true);
  const auto unpruned = run_incremental(builder, options, /*prune=*/false);
  ASSERT_FALSE(pruned.empty());
  EXPECT_EQ(pruned, unpruned);
}

TEST(Gc, DeliveryCutExcludesAncientBlocksDeterministically) {
  // An orphan chain block referenced only far in the future: with gc_depth
  // it is excluded from delivery by every validator; without gc_depth it is
  // delivered late. Both behaviours are deterministic.
  DagBuilder builder(4, 7);
  std::vector<BlockRef> genesis;
  for (const auto& block : builder.dag().blocks_at(0)) genesis.push_back(block->ref());

  // Round 1: all four propose; v0's block will be referenced only at round 12.
  const BlockPtr late_referenced = builder.add_block(0, 1, genesis);
  std::vector<BlockPtr> previous;
  for (ValidatorId v = 1; v < 4; ++v) previous.push_back(builder.add_block(v, 1, genesis));

  // Rounds 2..11: only validators 1..3 keep proposing (v0 is silent).
  for (Round r = 2; r <= 11; ++r) {
    std::vector<BlockPtr> next;
    for (ValidatorId v = 1; v < 4; ++v) next.push_back(builder.add_block_from(v, r, previous));
    previous = std::move(next);
  }
  // Round 12: v1 references the ancient round-1 block of v0.
  std::vector<BlockPtr> with_ancient = previous;
  with_ancient.push_back(late_referenced);
  builder.add_block_from(1, 12, with_ancient);
  builder.add_block_from(2, 12, previous);
  builder.add_block_from(3, 12, previous);
  previous = {builder.dag().slot(12, 1).front(), builder.dag().slot(12, 2).front(),
              builder.dag().slot(12, 3).front()};
  for (Round r = 13; r <= 24; ++r) {
    std::vector<BlockPtr> next;
    for (ValidatorId v = 1; v < 4; ++v) next.push_back(builder.add_block_from(v, r, previous));
    previous = std::move(next);
  }

  const auto delivered_with = [&](Round gc_depth) {
    CommitterOptions options = mahi_mahi_5(1);
    options.gc_depth = gc_depth;
    Committer committer(builder.dag(), builder.committee(), options);
    std::set<Digest> out;
    for (const auto& sub_dag : committer.try_commit()) {
      for (const auto& block : sub_dag.blocks) out.insert(block->digest());
    }
    return out;
  };

  // Unbounded history: the ancient block is eventually delivered.
  EXPECT_TRUE(delivered_with(0).contains(late_referenced->digest()));
  // gc_depth 6: a round-12+ leader cannot deliver a round-1 block.
  EXPECT_FALSE(delivered_with(6).contains(late_referenced->digest()));
}

TEST(Gc, DagPruneDropsRoundsAndExemptsOldParents) {
  DagBuilder builder(4, 7);
  builder.build_fully_connected(10);
  Dag dag(builder.committee());
  for (Round r = 1; r <= 10; ++r) {
    for (const auto& block : builder.dag().blocks_at(r)) dag.insert(block);
  }

  const std::size_t before = dag.block_count();
  dag.prune_below(6);
  EXPECT_LT(dag.block_count(), before);
  EXPECT_EQ(dag.pruned_below(), 6u);
  EXPECT_TRUE(dag.blocks_at(3).empty());

  // A new round-11 block referencing (pruned) round-5 parents inserts via
  // the exemption: sub-horizon refs count as satisfied.
  std::vector<BlockRef> parents;
  for (const auto& block : builder.dag().blocks_at(10)) parents.push_back(block->ref());
  parents.push_back(builder.dag().blocks_at(5).front()->ref());
  const BlockPtr with_old_parent = builder.add_block(0, 11, parents);
  EXPECT_TRUE(dag.parents_present(*with_old_parent));
  EXPECT_TRUE(dag.insert(with_old_parent));
}

TEST(Gc, SimulatedClusterStaysBoundedAndConsistent) {
  sim::SimConfig config;
  config.protocol = sim::Protocol::kMahiMahi5;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(20);
  config.load_tps = 1'000;
  config.duration = seconds(20);
  config.warmup = seconds(2);
  config.record_sequences = true;
  config.seed = 13;
  CommitterOptions options = mahi_mahi_5(2);
  options.gc_depth = 16;
  config.committer_override = options;

  const sim::SimResult result = sim::run_simulation(config);

  // Agreement and liveness are unaffected.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5) << result.to_string();
  for (std::size_t i = 0; i < result.sequences.size(); ++i) {
    for (std::size_t j = i + 1; j < result.sequences.size(); ++j) {
      const std::size_t common =
          std::min(result.sequences[i].size(), result.sequences[j].size());
      for (std::size_t k = 0; k < common; ++k) {
        ASSERT_EQ(result.sequences[i][k], result.sequences[j][k])
            << "divergence at " << k;
      }
    }
  }

  // Memory bound: the retained DAG holds roughly gc_depth + pipeline-depth
  // rounds of n blocks, far below the ~150+ rounds such a run produces.
  EXPECT_GT(result.max_round, 60u);
  EXPECT_LT(result.total_blocks, static_cast<std::uint64_t>(config.n) * 60);
}

TEST(Gc, UnboundedRunRetainsEverything) {
  sim::SimConfig config;
  config.protocol = sim::Protocol::kMahiMahi5;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(20);
  config.load_tps = 500;
  config.duration = seconds(12);
  config.warmup = seconds(2);
  config.seed = 13;

  const sim::SimResult result = sim::run_simulation(config);
  // Without GC the DAG holds every round produced so far.
  EXPECT_GE(result.total_blocks,
            static_cast<std::uint64_t>(result.max_round) * (config.n - 1));
}

TEST(Gc, RestartWithGcReplaysCleanly) {
  // Crash/restart with GC active: the WAL may contain blocks whose parents
  // were admitted via the GC exemption; replay must skip those instead of
  // crashing, and the cluster must stay consistent.
  sim::SimConfig config;
  config.protocol = sim::Protocol::kMahiMahi5;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(20);
  config.load_tps = 1'000;
  config.duration = seconds(16);
  config.warmup = seconds(2);
  config.record_sequences = true;
  config.seed = 29;
  CommitterOptions options = mahi_mahi_5(2);
  options.gc_depth = 12;
  config.committer_override = options;
  config.restarts.push_back({.id = 1, .crash_at = seconds(6), .restart_at = seconds(9)});

  const sim::SimResult result = sim::run_simulation(config);
  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.4) << result.to_string();
  for (std::size_t i = 0; i < result.sequences.size(); ++i) {
    for (std::size_t j = i + 1; j < result.sequences.size(); ++j) {
      const std::size_t common =
          std::min(result.sequences[i].size(), result.sequences[j].size());
      for (std::size_t k = 0; k < common; ++k) {
        ASSERT_EQ(result.sequences[i][k], result.sequences[j][k])
            << "divergence at " << k;
      }
    }
  }
}

}  // namespace
}  // namespace mahimahi
