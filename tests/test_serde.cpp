// Serialization tests: round-trips, varint edges, malformed-input rejection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "serde/serde.h"

namespace mahimahi::serde {
namespace {

TEST(Serde, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serde, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serde, VarintBoundaries) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
        0xffffffffffffffffULL}) {
    Writer w;
    w.varint(v);
    Reader r({w.data().data(), w.data().size()});
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Serde, VarintEncodingSizes) {
  const auto encoded_size = [](std::uint64_t v) {
    Writer w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(127), 1u);
  EXPECT_EQ(encoded_size(128), 2u);
  EXPECT_EQ(encoded_size(16383), 2u);
  EXPECT_EQ(encoded_size(16384), 3u);
  EXPECT_EQ(encoded_size(0xffffffffffffffffULL), 10u);
}

TEST(Serde, VarintRejectsOverflow) {
  // 11 continuation bytes: too long for 64 bits.
  Bytes malformed(11, 0x80);
  Reader r({malformed.data(), malformed.size()});
  EXPECT_THROW(r.varint(), SerdeError);
}

TEST(Serde, VarintRejectsOverlongFinalByte) {
  // 9 continuation bytes then a byte using more than the 1 remaining bit.
  Bytes malformed(9, 0x80);
  malformed.push_back(0x02);
  Reader r({malformed.data(), malformed.size()});
  EXPECT_THROW(r.varint(), SerdeError);
}

TEST(Serde, VarintTruncatedThrows) {
  Bytes truncated = {0x80, 0x80};  // continuation bits with no terminator
  Reader r({truncated.data(), truncated.size()});
  EXPECT_THROW(r.varint(), SerdeError);
}

TEST(Serde, BytesRoundTrip) {
  Writer w;
  const Bytes payload = {1, 2, 3, 4, 5};
  w.bytes({payload.data(), payload.size()});
  w.bytes({});  // empty
  Reader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, BytesRejectsLyingLengthPrefix) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes
  w.u8(42);        // provides 1
  Reader r({w.data().data(), w.data().size()});
  EXPECT_THROW(r.bytes(), SerdeError);
}

TEST(Serde, ReadPastEndThrows) {
  Writer w;
  w.u16(7);
  Reader r({w.data().data(), w.data().size()});
  r.u8();
  r.u8();
  EXPECT_THROW(r.u8(), SerdeError);
  EXPECT_THROW(r.u64(), SerdeError);
}

TEST(Serde, ExpectDoneRejectsTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r({w.data().data(), w.data().size()});
  r.u8();
  EXPECT_THROW(r.expect_done(), SerdeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serde, DigestRoundTrip) {
  Digest d;
  for (int i = 0; i < 32; ++i) d.bytes[i] = static_cast<std::uint8_t>(i * 3);
  Writer w;
  w.digest(d);
  Reader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.digest(), d);
}

TEST(Serde, RandomizedMixedRoundTrip) {
  Rng rng(99);
  for (int iteration = 0; iteration < 200; ++iteration) {
    // Random sequence of typed writes, then read it back.
    std::vector<int> kinds;
    std::vector<std::uint64_t> values;
    Writer w;
    const int ops = static_cast<int>(rng.uniform(20)) + 1;
    for (int i = 0; i < ops; ++i) {
      const int kind = static_cast<int>(rng.uniform(4));
      const std::uint64_t value = rng.next_u64();
      kinds.push_back(kind);
      values.push_back(value);
      switch (kind) {
        case 0: w.u8(static_cast<std::uint8_t>(value)); break;
        case 1: w.u32(static_cast<std::uint32_t>(value)); break;
        case 2: w.u64(value); break;
        case 3: w.varint(value); break;
      }
    }
    Reader r({w.data().data(), w.data().size()});
    for (int i = 0; i < ops; ++i) {
      switch (kinds[i]) {
        case 0: EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(values[i])); break;
        case 1: EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(values[i])); break;
        case 2: EXPECT_EQ(r.u64(), values[i]); break;
        case 3: EXPECT_EQ(r.varint(), values[i]); break;
      }
    }
    EXPECT_TRUE(r.done());
  }
}

}  // namespace
}  // namespace mahimahi::serde
