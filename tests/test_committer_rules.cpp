// Decision-rule tests for the Mahi-Mahi committer (§3.2, Algorithms 1-3).
//
// Each test constructs a DAG realizing one of the situations of the paper's
// worked example (Appendix B) around the leader the coin actually elects,
// then checks the direct/indirect classification and the resulting commit
// sequence.
#include <gtest/gtest.h>

#include <set>

#include "core/committer.h"
#include "sim/dag_builder.h"

namespace mahimahi {
namespace {

// --- Wave geometry ----------------------------------------------------------

TEST(WaveGeometry, RoundRolesW5) {
  const CommitterOptions o = mahi_mahi_5();
  EXPECT_EQ(o.vote_round(10), 13u);     // Propose, Boost, Boost, Vote
  EXPECT_EQ(o.certify_round(10), 14u);  // ... Certify
}

TEST(WaveGeometry, RoundRolesW4) {
  const CommitterOptions o = mahi_mahi_4();
  EXPECT_EQ(o.vote_round(10), 12u);  // one Boost round removed
  EXPECT_EQ(o.certify_round(10), 13u);
}

TEST(WaveGeometry, RoundRolesW3) {
  CommitterOptions o;
  o.wave_length = 3;
  EXPECT_EQ(o.vote_round(10), 11u);  // no Boost rounds
  EXPECT_EQ(o.certify_round(10), 12u);
}

TEST(WaveGeometry, ProposeRoundsWithStride) {
  const CommitterOptions mm = mahi_mahi_5();
  EXPECT_TRUE(mm.is_propose_round(1));
  EXPECT_TRUE(mm.is_propose_round(2));  // overlapping waves: every round
  EXPECT_FALSE(mm.is_propose_round(0));

  const CommitterOptions cm = cordial_miners_shape(5);
  EXPECT_TRUE(cm.is_propose_round(1));
  EXPECT_FALSE(cm.is_propose_round(2));
  EXPECT_TRUE(cm.is_propose_round(6));
}

TEST(WaveGeometry, InvalidOptionsRejected) {
  DagBuilder b(4);
  CommitterOptions bad;
  bad.wave_length = 2;
  EXPECT_THROW(Committer(b.dag(), b.committee(), bad), std::invalid_argument);
  CommitterOptions too_many_leaders = mahi_mahi_5(5);
  EXPECT_THROW(Committer(b.dag(), b.committee(), too_many_leaders),
               std::invalid_argument);
}

// --- Direct commit ----------------------------------------------------------

class DirectRule : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DirectRule, FullyConnectedDagCommitsDirectly) {
  const std::uint32_t w = GetParam();
  DagBuilder b(4);
  CommitterOptions options;
  options.wave_length = w;
  options.leaders_per_round = 1;
  Committer committer(b.dag(), b.committee(), options);

  // Nothing commits before the certify round of wave 1 exists.
  b.build_fully_connected(w - 1);
  EXPECT_TRUE(committer.try_commit().empty());

  // Round w completes wave 1 (propose round 1, certify round w).
  b.build_fully_connected(w);
  const auto committed = committer.try_commit();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].slot, (SlotId{1, 0}));
  EXPECT_EQ(committed[0].leader->round(), 1u);
  EXPECT_EQ(committed[0].leader->author(), b.leader_of({1, 0}, options));
  EXPECT_EQ(committer.stats().direct_commits, 1u);
  EXPECT_EQ(committer.stats().indirect_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(WaveLengths, DirectRule, ::testing::Values(3u, 4u, 5u));

TEST(Committer, DeliversCausalHistoryInOrder) {
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  Committer committer(b.dag(), b.committee(), options);
  b.build_fully_connected(6);
  const auto committed = committer.try_commit();
  ASSERT_GE(committed.size(), 1u);

  const auto& first = committed[0];
  // The first sub-DAG contains the genesis blocks and ends with the leader.
  EXPECT_EQ(first.blocks.back()->digest(), first.leader->digest());
  EXPECT_EQ(first.blocks.front()->round(), 0u);
  // Causal order: rounds never decrease.
  for (std::size_t i = 1; i < first.blocks.size(); ++i) {
    EXPECT_LE(first.blocks[i - 1]->round(), first.blocks[i]->round());
  }
}

TEST(Committer, NoDoubleDelivery) {
  DagBuilder b(4);
  Committer committer(b.dag(), b.committee(), mahi_mahi_5(2));
  b.build_fully_connected(12);
  std::set<Digest> delivered;
  for (const auto& sub_dag : committer.try_commit()) {
    for (const auto& block : sub_dag.blocks) {
      EXPECT_TRUE(delivered.insert(block->digest()).second)
          << "block delivered twice: " << block->ref().to_string();
    }
  }
  // A second call with no new blocks delivers nothing.
  EXPECT_TRUE(committer.try_commit().empty());
}

TEST(Committer, IncrementalCommitsMatchOneShot) {
  const auto options = mahi_mahi_5(2);
  std::vector<BlockRef> incremental_leaders, oneshot_leaders;
  {
    DagBuilder b(4);
    Committer committer(b.dag(), b.committee(), options);
    for (Round r = 1; r <= 12; ++r) {
      b.build_fully_connected(r);
      for (const auto& sub_dag : committer.try_commit()) {
        incremental_leaders.push_back(sub_dag.leader->ref());
      }
    }
  }
  {
    DagBuilder b(4);
    Committer committer(b.dag(), b.committee(), options);
    b.build_fully_connected(12);
    for (const auto& sub_dag : committer.try_commit()) {
      oneshot_leaders.push_back(sub_dag.leader->ref());
    }
  }
  ASSERT_FALSE(oneshot_leaders.empty());
  // The incremental run decided at least as much; the one-shot sequence must
  // be a prefix of it (it is evaluated on the same final DAG).
  ASSERT_GE(incremental_leaders.size(), oneshot_leaders.size());
  for (std::size_t i = 0; i < oneshot_leaders.size(); ++i) {
    EXPECT_EQ(incremental_leaders[i], oneshot_leaders[i]);
  }
}

TEST(Committer, MultiLeaderSlotsConsumeInOrder) {
  DagBuilder b(4);
  const auto options = mahi_mahi_5(3);
  Committer committer(b.dag(), b.committee(), options);
  b.build_fully_connected(10);
  const auto committed = committer.try_commit();
  ASSERT_GE(committed.size(), 3u);
  // Slots arrive ordered by (round, leader offset).
  for (std::size_t i = 1; i < committed.size(); ++i) {
    EXPECT_LT(committed[i - 1].slot, committed[i].slot);
  }
  EXPECT_EQ(committed[0].slot, (SlotId{1, 0}));
  EXPECT_EQ(committed[1].slot, (SlotId{1, 1}));
  EXPECT_EQ(committed[2].slot, (SlotId{1, 2}));
  // Distinct leaders for same-round slots.
  EXPECT_NE(committed[0].leader->author(), committed[1].leader->author());
}

// --- Direct skip ------------------------------------------------------------

TEST(DirectSkip, CrashedLeaderSlotIsSkippedPromptly) {
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  const ValidatorId leader = b.leader_of({1, 0}, options);
  Committer committer(b.dag(), b.committee(), options);

  // The leader never produces a round-1 block; the other three (= 2f+1)
  // validators keep going.
  std::vector<ValidatorId> alive;
  for (ValidatorId v = 0; v < 4; ++v) {
    if (v != leader) alive.push_back(v);
  }
  for (Round r = 1; r <= 5; ++r) b.add_full_round(r, alive);

  EXPECT_TRUE(committer.try_commit().empty());  // nothing committable at slot 1
  ASSERT_FALSE(committer.decided_sequence().empty());
  const auto& decision = committer.decided_sequence().front();
  EXPECT_EQ(decision.slot, (SlotId{1, 0}));
  EXPECT_EQ(decision.kind, SlotDecision::Kind::kSkip);
  EXPECT_EQ(decision.via, SlotDecision::Via::kDirect);
  EXPECT_EQ(committer.stats().direct_skips, 1u);
}

TEST(DirectSkip, UnreferencedLeaderBlockIsSkipped) {
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  const ValidatorId leader = b.leader_of({1, 0}, options);
  Committer committer(b.dag(), b.committee(), options);

  // The leader proposes, but the adversary suppresses its block: no later
  // block ever references it, so every vote-round block is a non-vote.
  b.add_full_round(1);
  for (Round r = 2; r <= 5; ++r) b.add_adversarial_round(r, {leader});

  committer.try_commit();
  ASSERT_FALSE(committer.decided_sequence().empty());
  const auto& decision = committer.decided_sequence().front();
  EXPECT_EQ(decision.kind, SlotDecision::Kind::kSkip);
  EXPECT_EQ(decision.via, SlotDecision::Via::kDirect);
}

TEST(DirectSkip, DisabledSkipLeavesSlotForIndirectResolution) {
  // Cordial-Miners-shaped committer: no direct skip. A crashed leader stalls
  // the slot until an anchor from the next wave resolves it indirectly.
  DagBuilder b(4);
  const auto options = cordial_miners_shape(5);  // stride 5, 1 leader, no skip
  const ValidatorId leader = b.leader_of({1, 0}, options);
  Committer committer(b.dag(), b.committee(), options);

  std::vector<ValidatorId> alive;
  for (ValidatorId v = 0; v < 4; ++v) {
    if (v != leader) alive.push_back(v);
  }
  // Wave 1 completes (rounds 1..5) without the leader: slot must stay
  // undecided (no direct skip available).
  for (Round r = 1; r <= 5; ++r) b.add_full_round(r, alive);
  EXPECT_TRUE(committer.try_commit().empty());
  EXPECT_TRUE(committer.decided_sequence().empty());
  EXPECT_EQ(committer.next_pending_slot(), (SlotId{1, 0}));

  // Wave 2 (propose round 6, certify round 10) commits; its leader anchors
  // the indirect skip of wave 1.
  for (Round r = 6; r <= 10; ++r) b.add_full_round(r);
  committer.try_commit();
  ASSERT_GE(committer.decided_sequence().size(), 2u);
  EXPECT_EQ(committer.decided_sequence()[0].kind, SlotDecision::Kind::kSkip);
  EXPECT_EQ(committer.decided_sequence()[0].via, SlotDecision::Via::kIndirect);
  EXPECT_EQ(committer.decided_sequence()[1].kind, SlotDecision::Kind::kCommit);
}

// --- Equivocation (the L5b / L'5b scenario of Appendix B) --------------------

class EquivocationScenario : public ::testing::Test {
 protected:
  // Builds: leader equivocates at round 1 with blocks X and Y. Vote-round
  // blocks reference X or Y *first* according to `x_voters` (all others vote
  // Y). Returns (X, Y).
  std::pair<BlockPtr, BlockPtr> build(DagBuilder& b, const CommitterOptions& options,
                                      const std::set<ValidatorId>& x_voters) {
    const ValidatorId leader = b.leader_of({1, 0}, options);
    // Round 1: everyone proposes; the leader also equivocates.
    const auto round1 = b.add_full_round(1);
    TxBatch marker;
    marker.id = 0xeeee;
    std::vector<BlockRef> genesis_refs;
    for (const auto& g : b.dag().blocks_at(0)) genesis_refs.push_back(g->ref());
    const BlockPtr x = round1[leader];
    const BlockPtr y = b.add_block(leader, 1, genesis_refs, {marker});

    // Rounds 2 .. vote_round-1: connect everything EXCEPT X and Y (so the
    // vote round decides who saw which equivocation first, via direct refs).
    for (Round r = 2; r < options.vote_round(1); ++r) {
      std::vector<BlockRef> refs;
      for (const auto& block : b.dag().blocks_at(r - 1)) {
        if (block->digest() == x->digest() || block->digest() == y->digest()) continue;
        refs.push_back(block->ref());
      }
      for (ValidatorId v = 0; v < b.n(); ++v) b.add_block(v, r, refs);
    }

    // Vote round: each block lists its preferred equivocation FIRST (the
    // ordered DFS hits it before anything else), then a 2f+1 quorum.
    const Round vote_round = options.vote_round(1);
    for (ValidatorId v = 0; v < b.n(); ++v) {
      std::vector<BlockRef> refs;
      refs.push_back(x_voters.contains(v) ? x->ref() : y->ref());
      for (const auto& block : b.dag().blocks_at(vote_round - 1)) {
        refs.push_back(block->ref());
      }
      b.add_block(v, vote_round, refs);
    }
    // Certify round: fully connected.
    b.add_full_round(options.certify_round(1));
    return {x, y};
  }
};

TEST_F(EquivocationScenario, MinorityEquivocationSkippedMajorityCommitted) {
  // One vote for X, three for Y (the paper's L5b/L'5b): Y commits, X dies.
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  const auto [x, y] = build(b, options, /*x_voters=*/{0});
  Committer committer(b.dag(), b.committee(), options);
  committer.try_commit();

  ASSERT_FALSE(committer.decided_sequence().empty());
  const auto& decision = committer.decided_sequence().front();
  EXPECT_EQ(decision.kind, SlotDecision::Kind::kCommit);
  EXPECT_EQ(decision.via, SlotDecision::Via::kDirect);
  EXPECT_EQ(decision.block->digest(), y->digest()) << "the certified equivocation wins";
}

TEST_F(EquivocationScenario, SplitVotesCommitNeither) {
  // Two votes each: neither reaches 2f+1 certificates, neither can be
  // directly skipped alone... but both can never be certified, so the slot
  // resolves indirectly once a later anchor commits.
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  const auto [x, y] = build(b, options, /*x_voters=*/{0, 1});
  Committer committer(b.dag(), b.committee(), options);
  committer.try_commit();
  // Neither equivocation may ever be committed.
  for (const auto& decision : committer.decided_sequence()) {
    if (decision.slot == (SlotId{1, 0})) {
      EXPECT_NE(decision.kind, SlotDecision::Kind::kCommit);
    }
  }

  // Extend the DAG so an anchor commits; the slot must resolve to skip.
  for (Round r = options.certify_round(1) + 1; r <= options.certify_round(1) + 6; ++r) {
    b.add_full_round(r);
  }
  committer.try_commit();
  ASSERT_FALSE(committer.decided_sequence().empty());
  EXPECT_EQ(committer.decided_sequence().front().slot, (SlotId{1, 0}));
  EXPECT_EQ(committer.decided_sequence().front().kind, SlotDecision::Kind::kSkip);
}

TEST_F(EquivocationScenario, AtMostOneEquivocationEverCommits) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DagBuilder b(4, seed);
    const auto options = mahi_mahi_4(1);
    const auto [x, y] = build(b, options, /*x_voters=*/{0, 2});
    for (Round r = options.certify_round(1) + 1; r <= options.certify_round(1) + 8; ++r) {
      b.add_full_round(r);
    }
    Committer committer(b.dag(), b.committee(), options);
    committer.try_commit();
    int commits_in_slot1 = 0;
    for (const auto& decision : committer.decided_sequence()) {
      if (decision.slot.round == 1 && decision.kind == SlotDecision::Kind::kCommit) {
        ++commits_in_slot1;
      }
    }
    EXPECT_LE(commits_in_slot1, 1) << "seed " << seed;
  }
}

// --- Indirect rule ----------------------------------------------------------

class IndirectScenario : public ::testing::Test {
 protected:
  // Builds a wave-1 DAG where the slot leader's block P collects exactly
  // `voters` votes, and at most one certificate (by the first voter's
  // certify block referencing exactly the voting blocks). With voters = 2f+1
  // and a single certificate the direct rule is inconclusive: commit needs
  // 2f+1 certificates, skip needs 2f+1 non-votes.
  BlockPtr build(DagBuilder& b, const CommitterOptions& options,
                 std::uint32_t voters) {
    const ValidatorId leader = b.leader_of({1, 0}, options);
    const auto round1 = b.add_full_round(1);
    const BlockPtr p = round1[leader];

    // Boost rounds: connect everything except P.
    for (Round r = 2; r < options.vote_round(1); ++r) {
      std::vector<BlockRef> refs;
      for (const auto& block : b.dag().blocks_at(r - 1)) {
        if (block->digest() == p->digest()) continue;
        refs.push_back(block->ref());
      }
      for (ValidatorId v = 0; v < b.n(); ++v) b.add_block(v, r, refs);
    }

    // Vote round: the first `voters` validators reference P directly (vote);
    // the rest do not (P is otherwise unreachable).
    const Round vote_round = options.vote_round(1);
    std::uint32_t voted = 0;
    std::vector<BlockPtr> vote_blocks;
    for (ValidatorId v = 0; v < b.n(); ++v) {
      std::vector<BlockRef> refs;
      if (voted < voters) {
        refs.push_back(p->ref());
        ++voted;
      }
      for (const auto& block : b.dag().blocks_at(vote_round - 1)) {
        refs.push_back(block->ref());
      }
      vote_blocks.push_back(b.add_block(v, vote_round, refs));
    }

    // Certify round: validator 0 references exactly the voting blocks (a
    // certificate iff voters >= 2f+1); everyone else references a quorum
    // containing at most 2f of the voters, so they are never certificates.
    const Round certify_round = options.certify_round(1);
    {
      std::vector<BlockRef> refs;
      for (std::uint32_t i = 0; i < voters; ++i) refs.push_back(vote_blocks[i]->ref());
      for (std::uint32_t i = voters; i < b.quorum(); ++i) {
        refs.push_back(vote_blocks[i]->ref());
      }
      b.add_block(0, certify_round, refs);
    }
    for (ValidatorId v = 1; v < b.n(); ++v) {
      std::vector<BlockRef> refs;
      // Reference the non-voters first, then voters up to a quorum, leaving
      // at most 2f voters in the parent set.
      for (ValidatorId u = b.n(); u-- > 0;) {
        if (refs.size() >= b.quorum()) break;
        refs.push_back(vote_blocks[u]->ref());
      }
      b.add_block(v, certify_round, refs);
    }
    return p;
  }
};

TEST_F(IndirectScenario, CertifiedLinkCommitsIndirectly) {
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  const BlockPtr p = build(b, options, /*voters=*/3);  // 2f+1 votes, 1 cert

  Committer committer(b.dag(), b.committee(), options);
  committer.try_commit();
  EXPECT_TRUE(committer.decided_sequence().empty())
      << "direct rule must be inconclusive with a single certificate";

  // Future rounds fully connected: a later wave commits and anchors slot 1.
  for (Round r = options.certify_round(1) + 1;
       r <= options.certify_round(1) + 2 * options.wave_length; ++r) {
    b.add_full_round(r);
  }
  committer.try_commit();
  ASSERT_FALSE(committer.decided_sequence().empty());
  const auto& decision = committer.decided_sequence().front();
  EXPECT_EQ(decision.slot, (SlotId{1, 0}));
  EXPECT_EQ(decision.kind, SlotDecision::Kind::kCommit);
  EXPECT_EQ(decision.via, SlotDecision::Via::kIndirect);
  EXPECT_EQ(decision.block->digest(), p->digest());
}

TEST_F(IndirectScenario, NoCertificateSkipsIndirectly) {
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  // Only f+1 = 2 votes: no certificate can exist, but 2 non-votes < 2f+1
  // also rules out a direct skip.
  build(b, options, /*voters=*/2);

  Committer committer(b.dag(), b.committee(), options);
  committer.try_commit();
  EXPECT_TRUE(committer.decided_sequence().empty());

  for (Round r = options.certify_round(1) + 1;
       r <= options.certify_round(1) + 2 * options.wave_length; ++r) {
    b.add_full_round(r);
  }
  committer.try_commit();
  ASSERT_FALSE(committer.decided_sequence().empty());
  const auto& decision = committer.decided_sequence().front();
  EXPECT_EQ(decision.slot, (SlotId{1, 0}));
  EXPECT_EQ(decision.kind, SlotDecision::Kind::kSkip);
  EXPECT_EQ(decision.via, SlotDecision::Via::kIndirect);
}

// --- Misc -------------------------------------------------------------------

TEST(Committer, SlotLeaderGatedOnCoinOpening) {
  DagBuilder b(4);
  const auto options = mahi_mahi_5(1);
  Committer committer(b.dag(), b.committee(), options);
  // Certify round of wave 1 is round 5; before 2f+1 round-5 blocks exist the
  // leader is unknown.
  b.build_fully_connected(4);
  EXPECT_FALSE(committer.slot_leader({1, 0}).has_value());
  b.add_full_round(5, {0, 1});
  EXPECT_FALSE(committer.slot_leader({1, 0}).has_value());
  b.add_full_round(5, {2});
  ASSERT_TRUE(committer.slot_leader({1, 0}).has_value());
  EXPECT_EQ(*committer.slot_leader({1, 0}), b.leader_of({1, 0}, options));
}

TEST(Committer, StatsAccumulate) {
  DagBuilder b(4);
  Committer committer(b.dag(), b.committee(), mahi_mahi_5(2));
  b.build_fully_connected(15);
  const auto committed = committer.try_commit();
  const auto& stats = committer.stats();
  EXPECT_EQ(stats.committed_slots(), committed.size());
  EXPECT_GT(stats.delivered_blocks, 0u);
  EXPECT_EQ(stats.direct_commits + stats.indirect_commits + stats.direct_skips +
                stats.indirect_skips,
            committer.decided_sequence().size());
}

}  // namespace
}  // namespace mahimahi
