// Tests for the simulated threshold coin: share validity, reconstruction
// threshold, determinism, and distinct-author counting.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/blake2b.h"
#include "crypto/coin.h"

namespace mahimahi::crypto {
namespace {

Digest seed(const char* tag) { return Blake2b::hash256(as_bytes_view(tag)); }

std::vector<std::pair<std::uint32_t, CoinShare>> shares_from(
    const ThresholdCoin& coin, std::uint64_t round, std::vector<std::uint32_t> authors) {
  std::vector<std::pair<std::uint32_t, CoinShare>> out;
  for (const auto a : authors) out.emplace_back(a, coin.share(a, round));
  return out;
}

TEST(ThresholdCoin, SharesVerify) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint64_t r = 0; r < 10; ++r) {
      EXPECT_TRUE(coin.verify_share(a, r, coin.share(a, r)));
    }
  }
}

TEST(ThresholdCoin, RejectsForeignShare) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  EXPECT_FALSE(coin.verify_share(0, 5, coin.share(1, 5)));  // wrong author
  EXPECT_FALSE(coin.verify_share(0, 5, coin.share(0, 6)));  // wrong round
  EXPECT_FALSE(coin.verify_share(9, 5, coin.share(0, 5)));  // out-of-range author
}

TEST(ThresholdCoin, RejectsTamperedShare) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  CoinShare share = coin.share(2, 7);
  share.bytes[0] ^= 1;
  EXPECT_FALSE(coin.verify_share(2, 7, share));
}

TEST(ThresholdCoin, CombinesAtThreshold) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  const auto shares = shares_from(coin, 3, {0, 1, 2});
  const auto value = coin.combine(3, shares);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, coin.value(3));
}

TEST(ThresholdCoin, FailsBelowThreshold) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  EXPECT_FALSE(coin.combine(3, shares_from(coin, 3, {0, 1})).has_value());
  EXPECT_FALSE(coin.combine(3, {}).has_value());
}

TEST(ThresholdCoin, DuplicateAuthorsDoNotCount) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  // Three shares but only two distinct authors: below the 2f+1 = 3 threshold.
  std::vector<std::pair<std::uint32_t, CoinShare>> shares = {
      {0, coin.share(0, 3)}, {0, coin.share(0, 3)}, {1, coin.share(1, 3)}};
  EXPECT_FALSE(coin.combine(3, shares).has_value());
}

TEST(ThresholdCoin, InvalidSharesDoNotCount) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  auto shares = shares_from(coin, 3, {0, 1, 2});
  shares[2].second.bytes[5] ^= 0xff;
  EXPECT_FALSE(coin.combine(3, shares).has_value());
  // With a fourth valid share the quorum is restored.
  shares.emplace_back(3, coin.share(3, 3));
  EXPECT_TRUE(coin.combine(3, shares).has_value());
}

TEST(ThresholdCoin, AnyQuorumYieldsSameValue) {
  const ThresholdCoin coin(7, 2, seed("epoch-7"));
  const auto v1 = coin.combine(11, shares_from(coin, 11, {0, 1, 2, 3, 4}));
  const auto v2 = coin.combine(11, shares_from(coin, 11, {2, 3, 4, 5, 6}));
  ASSERT_TRUE(v1.has_value());
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v1, *v2);
}

TEST(ThresholdCoin, ValuesVaryAcrossRounds) {
  const ThresholdCoin coin(4, 1, seed("epoch"));
  int repeats = 0;
  for (std::uint64_t r = 1; r < 100; ++r) {
    repeats += coin.value(r) == coin.value(r - 1);
  }
  EXPECT_LT(repeats, 3);
}

TEST(ThresholdCoin, ValuesVaryAcrossEpochs) {
  const ThresholdCoin a(4, 1, seed("epoch-a"));
  const ThresholdCoin b(4, 1, seed("epoch-b"));
  int repeats = 0;
  for (std::uint64_t r = 0; r < 100; ++r) repeats += a.value(r) == b.value(r);
  EXPECT_LT(repeats, 3);
}

TEST(ThresholdCoin, BatchShareVerificationMatchesSingle) {
  const ThresholdCoin coin(4, 1, seed("batch"));
  std::vector<ThresholdCoin::ShareQuery> queries;
  // Valid shares across rounds and authors (authors repeat, exercising the
  // per-author key cache), plus an out-of-range author, a wrong-round share,
  // and a tampered share.
  for (std::uint32_t author = 0; author < 4; ++author) {
    for (std::uint64_t round = 1; round <= 3; ++round) {
      queries.push_back({author, round, coin.share(author, round)});
    }
  }
  queries.push_back({9, 1, coin.share(0, 1)});           // unknown author
  queries.push_back({1, 2, coin.share(1, 3)});           // share for the wrong round
  auto tampered = coin.share(2, 2);
  tampered.bytes[0] ^= 0xff;
  queries.push_back({2, 2, tampered});

  const auto ok = coin.verify_shares(queries);
  ASSERT_EQ(ok.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(ok[i] != 0,
              coin.verify_share(queries[i].author, queries[i].round, queries[i].share))
        << "query " << i;
  }
  EXPECT_FALSE(ok[queries.size() - 3]);
  EXPECT_FALSE(ok[queries.size() - 2]);
  EXPECT_FALSE(ok[queries.size() - 1]);
}

TEST(ThresholdCoin, LeaderDistributionRoughlyUniform) {
  // The coin value mod n drives leader election; check rough uniformity.
  const ThresholdCoin coin(10, 3, seed("uniformity"));
  std::vector<int> hits(10, 0);
  constexpr int kRounds = 20000;
  for (std::uint64_t r = 0; r < kRounds; ++r) ++hits[coin.value(r) % 10];
  for (int h : hits) {
    EXPECT_GT(h, kRounds / 10 * 0.9);
    EXPECT_LT(h, kRounds / 10 * 1.1);
  }
}

}  // namespace
}  // namespace mahimahi::crypto
