// End-to-end integration tests: full protocol runs through the discrete-
// event simulator, across all four protocol variants, with faults.
#include <gtest/gtest.h>

#include "sim/harness.h"

namespace mahimahi::sim {
namespace {

SimConfig base_config(Protocol protocol, std::uint32_t n) {
  SimConfig config;
  config.protocol = protocol;
  config.n = n;
  config.wan = false;  // uniform 50ms links keep small tests fast & predictable
  config.uniform_latency = millis(25);
  config.load_tps = 1'000;
  config.duration = seconds(10);
  config.warmup = seconds(3);
  config.record_sequences = true;
  config.seed = 7;
  return config;
}

void expect_prefix_consistent(const SimResult& result, const std::string& label) {
  const auto& sequences = result.sequences;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    for (std::size_t j = i + 1; j < sequences.size(); ++j) {
      const std::size_t common = std::min(sequences[i].size(), sequences[j].size());
      for (std::size_t k = 0; k < common; ++k) {
        ASSERT_EQ(sequences[i][k], sequences[j][k])
            << label << ": validators " << i << " and " << j << " diverge at " << k;
      }
    }
  }
}

class ProtocolRun : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolRun, CommitsTransactionsWithAgreement) {
  const auto config = base_config(GetParam(), 4);
  const SimResult result = run_simulation(config);

  EXPECT_GT(result.committed_tps, config.load_tps * 0.5)
      << to_string(GetParam()) << ": " << result.to_string();
  EXPECT_GT(result.latency_samples, 100u);
  EXPECT_GT(result.avg_latency_s, 0.0);
  EXPECT_LT(result.avg_latency_s, 5.0) << result.to_string();
  EXPECT_GT(result.max_round, 20u);
  expect_prefix_consistent(result, to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolRun,
                         ::testing::Values(Protocol::kMahiMahi5, Protocol::kMahiMahi4,
                                           Protocol::kCordialMiners, Protocol::kTusk),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           std::string name = to_string(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(SimIntegration, DeterministicGivenSeed) {
  const auto config = base_config(Protocol::kMahiMahi5, 4);
  const SimResult a = run_simulation(config);
  const SimResult b = run_simulation(config);
  EXPECT_EQ(a.committed_tps, b.committed_tps);
  EXPECT_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.sequences, b.sequences);
}

TEST(SimIntegration, DeterministicWithIncrementalCheckpointsAndCerts) {
  // The incremental-checkpoint machinery (delta cuts, cert-share collection
  // events, withholding filters) adds scheduled events but must add zero
  // nondeterminism: two identical seeded runs produce identical metrics,
  // sequences included. The checkpoint model needs GC on (committer
  // override with a gc_depth) and a cut interval.
  auto config = base_config(Protocol::kMahiMahi5, 4);
  CommitterOptions options = mahi_mahi_5(2);
  options.gc_depth = 10;
  config.committer_override = options;
  config.checkpoint_interval = 5;
  config.checkpoint_max_deltas = 3;
  config.cert_collect_delay = millis(2);
  config.cert_withholding = {3};  // one withheld signer: quorum still forms

  const SimResult a = run_simulation(config);
  const SimResult b = run_simulation(config);
  EXPECT_GT(a.checkpoints_written, 0u);
  EXPECT_GT(a.checkpoint_delta_cuts, 0u);
  EXPECT_GT(a.checkpoint_certs_formed, 0u);
  EXPECT_EQ(a.committed_tps, b.committed_tps);
  EXPECT_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_delta_cuts, b.checkpoint_delta_cuts);
  EXPECT_EQ(a.checkpoint_certs_formed, b.checkpoint_certs_formed);
  EXPECT_EQ(a.sequences, b.sequences);
}

TEST(SimIntegration, ParallelCommitMatchesSerialRun) {
  // Off-loop commit evaluation must be invisible to consensus: with zero
  // scan delay the commit sequences, throughput and latencies are
  // bit-identical to the inline mode (decisions are final, and the scan
  // event fires at the same simulated instant as the insertion).
  auto config = base_config(Protocol::kMahiMahi5, 4);
  const SimResult serial = run_simulation(config);
  config.parallel_commit = true;
  const SimResult parallel = run_simulation(config);
  EXPECT_EQ(serial.sequences, parallel.sequences);
  EXPECT_EQ(serial.committed_tps, parallel.committed_tps);
  EXPECT_EQ(serial.avg_latency_s, parallel.avg_latency_s);
  EXPECT_EQ(serial.max_round, parallel.max_round);
  EXPECT_EQ(serial.commit_stats.committed_slots(),
            parallel.commit_stats.committed_slots());

  // With a nonzero scan lag the timing shifts but agreement must hold, and
  // the delayed sequences stay prefix-consistent with the serial ones.
  config.commit_scan_delay = millis(5);
  const SimResult delayed = run_simulation(config);
  expect_prefix_consistent(delayed, "parallel+delay");
  ASSERT_EQ(delayed.sequences.size(), serial.sequences.size());
  for (std::size_t v = 0; v < serial.sequences.size(); ++v) {
    const std::size_t common =
        std::min(serial.sequences[v].size(), delayed.sequences[v].size());
    ASSERT_GT(common, 0u) << "validator " << v << " committed nothing";
    for (std::size_t k = 0; k < common; ++k) {
      ASSERT_EQ(serial.sequences[v][k], delayed.sequences[v][k])
          << "validator " << v << " diverges at " << k;
    }
  }
}

TEST(SimIntegration, ParallelCommitSurvivesCrashRestart) {
  // The replica scanner dies with the process and is reseeded from the
  // recovered DAG + consumption head after WAL replay; commits must resume
  // through the off-loop path with full agreement.
  auto config = base_config(Protocol::kMahiMahi5, 4);
  config.parallel_commit = true;
  config.restarts.push_back({.id = 2, .crash_at = seconds(4), .restart_at = seconds(6)});
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5) << result.to_string();
  EXPECT_GT(result.wal_replayed_blocks, 0u);
  expect_prefix_consistent(result, "parallel+restart");
}

TEST(SimIntegration, GroupCommitWithoutLogActsSynchronously) {
  // wal_group_commit with no log at all (no wal_dir, no restarts): there is
  // nothing to make durable, so durability acks complete synchronously —
  // the NullWal contract — and the run is bit-identical to the baseline.
  // This is the deadlock guard: if the ack were deferred, every proposal
  // broadcast would wait forever and nothing would commit.
  const auto baseline_config = base_config(Protocol::kMahiMahi5, 4);
  auto config = baseline_config;
  config.wal_group_commit = true;
  config.wal_flush_interval = millis(2);
  const SimResult baseline = run_simulation(baseline_config);
  const SimResult grouped = run_simulation(config);
  EXPECT_GT(grouped.committed_tps, baseline_config.load_tps * 0.5);
  EXPECT_EQ(grouped.sequences, baseline.sequences);
  EXPECT_EQ(grouped.committed_tps, baseline.committed_tps);
  EXPECT_EQ(grouped.avg_latency_s, baseline.avg_latency_s);
  EXPECT_EQ(grouped.wal_groups_flushed, 0u);  // no log → no groups
}

TEST(SimIntegration, GroupCommitWithMemLogIsDeterministicAndAgrees) {
  // With a log (the in-memory one restarts use), group commit stages records
  // and defers own-block broadcasts behind a flush event. The flush latency
  // shifts timing, but the run stays deterministic and agreement holds.
  auto config = base_config(Protocol::kMahiMahi5, 4);
  config.wal_group_commit = true;
  config.wal_flush_interval = millis(2);
  config.restarts.push_back({.id = 2, .crash_at = seconds(4), .restart_at = seconds(6)});
  const SimResult a = run_simulation(config);
  const SimResult b = run_simulation(config);
  EXPECT_EQ(a.sequences, b.sequences);
  EXPECT_EQ(a.committed_tps, b.committed_tps);
  EXPECT_GT(a.wal_groups_flushed, 0u);
  EXPECT_GT(a.committed_tps, config.load_tps * 0.5) << a.to_string();
  EXPECT_EQ(a.equivocation_cells, 0u);
  expect_prefix_consistent(a, "group-commit mem log");
}

TEST(SimIntegration, SeedChangesSchedule) {
  auto config = base_config(Protocol::kMahiMahi5, 4);
  const SimResult a = run_simulation(config);
  config.seed = 8;
  const SimResult b = run_simulation(config);
  // Different arrival timings; latencies will not be bit-identical.
  EXPECT_NE(a.avg_latency_s, b.avg_latency_s);
}

TEST(SimIntegration, SurvivesCrashFaults) {
  auto config = base_config(Protocol::kMahiMahi5, 10);
  config.crashed = 3;  // the maximum for n = 10
  config.load_tps = 2'000;
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.4) << result.to_string();
  // Crashed validators' slots are skipped directly, not via anchors.
  EXPECT_GT(result.commit_stats.direct_skips, 0u);
  expect_prefix_consistent(result, "crash");
}

TEST(SimIntegration, CordialMinersSkipsLateUnderCrashFaults) {
  auto config = base_config(Protocol::kCordialMiners, 10);
  config.crashed = 3;
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, 0.0) << result.to_string();
  // No direct skip rule: faulty leaders resolve indirectly.
  EXPECT_EQ(result.commit_stats.direct_skips, 0u);
  expect_prefix_consistent(result, "cm-crash");
}

TEST(SimIntegration, ToleratesEquivocator) {
  auto config = base_config(Protocol::kMahiMahi5, 4);
  config.equivocators = 1;
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, 0.0) << result.to_string();
  expect_prefix_consistent(result, "equivocator");
}

TEST(SimIntegration, WanGeoModelRuns) {
  auto config = base_config(Protocol::kMahiMahi5, 10);
  config.wan = true;
  config.load_tps = 5'000;
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5) << result.to_string();
  // WAN quorum formation is slower than the 25ms uniform fabric.
  EXPECT_GT(result.avg_latency_s, 0.2);
  expect_prefix_consistent(result, "wan");
}

TEST(SimIntegration, LatencyOrderingMatchesPaperShape) {
  // Claim C1 in miniature: Tusk > Cordial Miners > Mahi-Mahi-5 > Mahi-Mahi-4
  // in latency at equal (low) load. Small committee, WAN links.
  auto config = base_config(Protocol::kMahiMahi4, 4);
  config.wan = true;
  config.load_tps = 500;
  config.record_sequences = false;

  const double mm4 = run_simulation(config).avg_latency_s;
  config.protocol = Protocol::kMahiMahi5;
  const double mm5 = run_simulation(config).avg_latency_s;
  config.protocol = Protocol::kCordialMiners;
  const double cm = run_simulation(config).avg_latency_s;
  config.protocol = Protocol::kTusk;
  const double tusk = run_simulation(config).avg_latency_s;

  EXPECT_LT(mm4, mm5) << "C5: wave length 4 beats 5";
  EXPECT_LT(mm5, cm) << "C1: multi-leader overlapping waves beat CM";
  EXPECT_LT(cm, tusk) << "C1: uncertified DAG beats certified DAG";
}

TEST(SimIntegration, MultiClientShardedMempoolWorkload) {
  // Several client streams per validator, each its own sharded-mempool
  // client key, over a multi-shard pool: the same admission + fair-drain
  // path the TCP runtime uses. Consensus must stay consistent and no
  // admission rejects should occur at these rates.
  auto config = base_config(Protocol::kMahiMahi5, 4);
  config.clients_per_validator = 8;
  config.mempool.shards = 8;
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5) << result.to_string();
  EXPECT_EQ(result.mempool_rejected, 0u);
  expect_prefix_consistent(result, "multi-client");
}

TEST(SimIntegration, SingleClientTraceMatchesMultiClientThroughput) {
  // clients_per_validator only re-partitions the offered load across client
  // streams; aggregate throughput stays in the same band.
  auto config = base_config(Protocol::kMahiMahi5, 4);
  config.record_sequences = false;
  const SimResult one = run_simulation(config);
  config.clients_per_validator = 4;
  const SimResult four = run_simulation(config);
  EXPECT_GT(four.committed_tps, one.committed_tps * 0.8);
  EXPECT_LT(four.committed_tps, one.committed_tps * 1.2);
}

TEST(SimIntegration, MempoolQuotaShedsOverdrivenClient) {
  // A tiny per-client quota under sustained load must surface as explicit
  // admission rejects (backpressure), not a stall or a crash.
  auto config = base_config(Protocol::kMahiMahi5, 4);
  config.record_sequences = false;
  config.load_tps = 5'000;
  // ~16 KB arrives per validator per 25ms interval but proposals (drains)
  // are paced at 120ms: residency overshoots a 32 KB quota between drains,
  // so some batches must bounce while earlier ones still commit.
  config.mempool.max_client_bytes = 32'768;
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, 0.0) << result.to_string();
  EXPECT_GT(result.mempool_rejected, 0u);
}

TEST(SimIntegration, VerifiedCryptoPathWorks) {
  // Full signature + coin-share verification on a small, short run.
  auto config = base_config(Protocol::kMahiMahi5, 4);
  config.duration = seconds(5);
  config.warmup = seconds(2);
  config.load_tps = 200;
  config.verify_crypto = true;
  const SimResult result = run_simulation(config);
  EXPECT_GT(result.committed_tps, 0.0) << result.to_string();
  expect_prefix_consistent(result, "verified");
}

}  // namespace
}  // namespace mahimahi::sim
