// Verifier cache: digest-keyed ed25519 memoization (validator/verifier_cache.h).
//
// Unit behaviour (FIFO bound, hit/miss accounting) plus the two integration
// properties that make it safe to deploy:
//   * sharing a cache across co-located validators changes cost, never
//     outcome — a cached simulation produces bit-identical results to an
//     uncached one;
//   * forged blocks are not cached (only successful verifications are), so
//     a rejected digest is re-checked — and re-rejected — every time.
#include <gtest/gtest.h>

#include "sim/harness.h"
#include "validator/validator.h"
#include "validator/verifier_cache.h"

namespace mahimahi {
namespace {

Digest digest_of(std::uint8_t tag) {
  Digest digest{};
  digest.bytes[0] = tag;
  return digest;
}

TEST(VerifierCache, InsertAndContains) {
  VerifierCache cache(8);
  EXPECT_FALSE(cache.contains(digest_of(1)));
  cache.insert(digest_of(1));
  EXPECT_TRUE(cache.contains(digest_of(1)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifierCache, DuplicateInsertIsIdempotent) {
  VerifierCache cache(8);
  cache.insert(digest_of(1));
  cache.insert(digest_of(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifierCache, FifoEvictionAtCapacity) {
  VerifierCache cache(3);
  for (std::uint8_t i = 1; i <= 4; ++i) cache.insert(digest_of(i));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.contains(digest_of(1)));  // oldest evicted
  EXPECT_TRUE(cache.contains(digest_of(2)));
  EXPECT_TRUE(cache.contains(digest_of(4)));
}

TEST(VerifierCache, ZeroCapacityNeverStores) {
  VerifierCache cache(0);
  cache.insert(digest_of(1));
  EXPECT_FALSE(cache.contains(digest_of(1)));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerifierCache, SharedAcrossCoresVerifiesOncePerBlock) {
  // Two validator cores share one cache: a block validated by the first
  // core is a cache hit at the second.
  const auto setup = Committee::make_test(4);
  const auto cache = std::make_shared<VerifierCache>();

  auto make = [&](ValidatorId id) {
    ValidatorConfig config;
    config.id = id;
    config.committer = mahi_mahi_5(1);
    config.signature_cache = cache;
    return std::make_unique<ValidatorCore>(setup.committee,
                                           setup.keypairs[id].private_key, config);
  };
  auto v0 = make(0);
  auto v1 = make(1);
  auto v2 = make(2);

  const auto block = v2->on_tick(0).broadcast[0];
  v0->on_block(block, 2, 0);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), 0u);
  v1->on_block(block, 2, 0);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_TRUE(v0->dag().contains(block->digest()));
  EXPECT_TRUE(v1->dag().contains(block->digest()));
}

TEST(VerifierCache, ForgedBlocksAreNeverCached) {
  const auto setup = Committee::make_test(4);
  const auto cache = std::make_shared<VerifierCache>();

  ValidatorConfig config;
  config.id = 0;
  config.committer = mahi_mahi_5(1);
  config.signature_cache = cache;
  ValidatorCore v0(setup.committee, setup.keypairs[0].private_key, config);

  std::vector<BlockRef> genesis;
  for (const auto& block : v0.dag().blocks_at(0)) genesis.push_back(block->ref());
  // Signed with the wrong key: author 1, key 2.
  const auto forged = std::make_shared<const Block>(
      Block::make(1, 1, genesis, {}, setup.committee.coin().share(1, 1),
                  setup.keypairs[2].private_key));

  EXPECT_TRUE(v0.on_block(forged, 1, 0).inserted.empty());
  EXPECT_FALSE(cache->contains(forged->digest()));
  EXPECT_EQ(v0.blocks_rejected(), 1u);

  // Re-delivery re-verifies (miss) and re-rejects.
  EXPECT_TRUE(v0.on_block(forged, 1, 1).inserted.empty());
  EXPECT_EQ(v0.blocks_rejected(), 2u);
  EXPECT_EQ(cache->hits(), 0u);
  EXPECT_EQ(cache->misses(), 2u);
}

TEST(VerifierCache, CachedSimulationMatchesUncached) {
  sim::SimConfig config;
  config.protocol = sim::Protocol::kMahiMahi5;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(25);
  config.load_tps = 500;
  config.duration = seconds(8);
  config.warmup = seconds(2);
  config.record_sequences = true;
  config.seed = 17;
  config.verify_crypto = true;  // the harness shares one cache per process

  const sim::SimResult cached = sim::run_simulation(config);
  EXPECT_GT(cached.committed_tps, config.load_tps * 0.5) << cached.to_string();

  // The cache changes CPU cost only: a fresh run (fresh cache) must be
  // bit-identical in protocol outcomes.
  const sim::SimResult again = sim::run_simulation(config);
  EXPECT_EQ(cached.sequences, again.sequences);
  EXPECT_EQ(cached.committed_tps, again.committed_tps);
  EXPECT_EQ(cached.max_round, again.max_round);
}

}  // namespace
}  // namespace mahimahi
