// Observability layer tests: histogram bucket math, cross-thread shard
// merging, registry + callback metrics, exporter golden output, lifecycle
// tracer semantics (commit-wait spans, finality weighting, FIFO eviction),
// the loop-stall watchdog, the lazily-sorted LatencyRecorder, structured log
// context, and deterministic sim-time spans end to end.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "client/metrics.h"
#include "common/log.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "sim/harness.h"
#include "types/block.h"
#include "validator/validator.h"

namespace mahimahi {
namespace {

using obs::bucket_upper_bound;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::kHistogramBuckets;

TEST(ObsHistogram, BucketBoundaries) {
  // bucket_of is bit_width: bucket 0 holds only 0, bucket i >= 1 holds
  // [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  for (std::size_t i = 1; i < kHistogramBuckets - 1; ++i) {
    // Both edges of every bucket land in it; the upper bound is inclusive.
    EXPECT_EQ(Histogram::bucket_of(1ull << (i - 1)), i) << i;
    EXPECT_EQ(Histogram::bucket_of(bucket_upper_bound(i)), i) << i;
  }
  // Values past the last bucket's range saturate into it.
  EXPECT_EQ(Histogram::bucket_of(~0ull), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_upper_bound(0), 0u);
  EXPECT_EQ(bucket_upper_bound(1), 1u);
  EXPECT_EQ(bucket_upper_bound(4), 15u);
}

TEST(ObsHistogram, RecordWeightAndNegativeClamp) {
  Histogram h;
  h.record(5, 3);    // bucket 3, weight 3
  h.record(-17);     // clamps to 0 -> bucket 0
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.buckets[3], 3u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.sum, 15u);
  EXPECT_DOUBLE_EQ(snap.mean(), 15.0 / 4.0);
}

TEST(ObsHistogram, PercentileWalksCumulative) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);   // bucket 4, ub 15
  for (int i = 0; i < 10; ++i) h.record(100);  // bucket 7, ub 127
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.percentile(0.50), 15u);
  EXPECT_EQ(snap.percentile(0.90), 15u);
  EXPECT_EQ(snap.percentile(0.95), 127u);
  EXPECT_EQ(snap.percentile(1.0), 127u);
  EXPECT_EQ(HistogramSnapshot{}.percentile(0.5), 0u);
}

TEST(ObsHistogram, MergeIsElementwiseAddition) {
  Histogram a, b;
  a.record(3);
  b.record(3);
  b.record(1000, 2);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_EQ(merged.buckets[2], 2u);
  EXPECT_EQ(merged.sum, 3u + 3u + 2000u);
}

TEST(ObsRegistry, CrossThreadShardMerge) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("c");
  obs::Histogram& histogram = registry.histogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.record(i % 64);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every shard's contribution survives the merge, whatever stripe each
  // thread landed on.
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, SameNameReturnsSameMetricKindClashThrows) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
}

TEST(ObsRegistry, GaugeSemantics) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("g");
  gauge.set(-5);
  EXPECT_EQ(gauge.value(), -5);
  gauge.add(15);
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(7);  // lower: no effect
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(42);
  EXPECT_EQ(gauge.value(), 42);
}

TEST(ObsRegistry, CallbackMetricsEvaluateAtDump) {
  obs::Registry registry;
  std::uint64_t source = 7;
  registry.counter_fn("bridged_total", [&] { return source; });
  registry.gauge_fn("bridged_gauge", [&] { return static_cast<std::int64_t>(-3); });
  source = 9;  // dump must see the value at dump time, not registration time
  const obs::MetricsSnapshot snap = registry.dump();
  EXPECT_EQ(snap.counter_value("bridged_total"), 9u);
  EXPECT_EQ(snap.gauge_value("bridged_gauge"), -3);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsExport, PrometheusGolden) {
  obs::Registry registry("validator=\"3\"");
  registry.counter("mm_b_total", "A counter").add(5);
  registry.gauge("mm_c_gauge").set(-2);
  obs::Histogram& h = registry.histogram("mm_a_micros", "A histogram");
  h.record(0);
  h.record(3, 2);
  const std::string text = obs::render_prometheus(registry.dump());
  // std::map order: mm_a_micros, mm_b_total, mm_c_gauge. Buckets trim after
  // the last non-empty one (bucket 2, ub 3), then +Inf.
  const std::string expected =
      "# HELP mm_a_micros A histogram\n"
      "# TYPE mm_a_micros histogram\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"0\"} 1\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"1\"} 1\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"3\"} 3\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"+Inf\"} 3\n"
      "mm_a_micros_sum{validator=\"3\"} 6\n"
      "mm_a_micros_count{validator=\"3\"} 3\n"
      "# HELP mm_b_total A counter\n"
      "# TYPE mm_b_total counter\n"
      "mm_b_total{validator=\"3\"} 5\n"
      "# TYPE mm_c_gauge gauge\n"
      "mm_c_gauge{validator=\"3\"} -2\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsExport, PrometheusNoLabels) {
  obs::Registry registry;
  registry.counter("plain_total").add(1);
  EXPECT_EQ(obs::render_prometheus(registry.dump()),
            "# TYPE plain_total counter\nplain_total 1\n");
}

TEST(ObsExport, JsonGolden) {
  obs::Registry registry("validator=\"3\"");
  registry.counter("mm_b_total").add(5);
  registry.gauge("mm_c_gauge").set(-2);
  obs::Histogram& h = registry.histogram("mm_a_micros");
  h.record(0);
  h.record(3, 2);
  const std::string expected =
      "{\"labels\":\"validator=\\\"3\\\"\","
      "\"counters\":{\"mm_b_total\":5},"
      "\"gauges\":{\"mm_c_gauge\":-2},"
      "\"histograms\":{\"mm_a_micros\":{\"count\":3,\"sum\":6,"
      "\"buckets\":[[0,1],[3,2]]}}}";
  EXPECT_EQ(obs::render_json(registry.dump()), expected);
}

// ----- Lifecycle tracer ------------------------------------------------------

class ObsTracerTest : public ::testing::Test {
 protected:
  ObsTracerTest() : setup_(Committee::make_test(4)) {}

  BlockPtr make_block(ValidatorId author, std::uint64_t marker,
                      TimeMicros submitted_at = 0, std::uint32_t count = 1) {
    std::vector<BlockRef> refs;
    for (ValidatorId v = 0; v < 4; ++v) {
      refs.push_back(Block::genesis(v, setup_.committee.coin()).ref());
    }
    TxBatch batch;
    batch.id = marker;
    batch.submitted_at = submitted_at;
    batch.count = count;
    return std::make_shared<const Block>(
        Block::make(author, 1, refs, {batch},
                    setup_.committee.coin().share(author, 1),
                    setup_.keypairs[author].private_key));
  }

  CommittedSubDag make_sub_dag(std::vector<BlockPtr> blocks) {
    CommittedSubDag sub_dag;
    sub_dag.slot = SlotId{1, 0};
    sub_dag.leader = blocks.back();
    sub_dag.blocks = std::move(blocks);
    return sub_dag;
  }

  Committee::TestSetup setup_;
};

TEST_F(ObsTracerTest, CommitWaitAndFinalitySpans) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  BlockPtr block = make_block(0, 1, /*submitted_at=*/100, /*count=*/10);
  tracer.block_inserted(block->digest(), 1'000);
  tracer.sub_dag_committed(make_sub_dag({block}), 5'000);

  const obs::MetricsSnapshot snap = registry.dump();
  const HistogramSnapshot wait = snap.histogram("mm_stage_commit_wait_micros");
  EXPECT_EQ(wait.count(), 1u);
  EXPECT_EQ(wait.sum, 4'000u);  // 5000 - 1000
  // Finality weighted by the batch's transaction count.
  const HistogramSnapshot finality = snap.histogram("mm_finality_micros");
  EXPECT_EQ(finality.count(), 10u);
  EXPECT_EQ(finality.sum, 10u * 4'900u);  // 5000 - 100 each
  EXPECT_EQ(tracer.nonmonotonic(), 0u);
  EXPECT_EQ(snap.counter_value("mm_trace_nonmonotonic_total"), 0u);
}

TEST_F(ObsTracerTest, UnstampedBatchesSkipFinality) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  // submitted_at == 0: drivers that do not stamp (the TCP runtime's wire
  // path) must not pollute finality with bogus epoch-start deltas.
  tracer.sub_dag_committed(make_sub_dag({make_block(0, 1, 0)}), 5'000);
  const obs::MetricsSnapshot snap = registry.dump();
  EXPECT_EQ(snap.histogram("mm_finality_micros").count(), 0u);
  EXPECT_EQ(snap.counter_value("mm_trace_finality_unstamped_total"), 1u);
}

TEST_F(ObsTracerTest, NonMonotonicStampsClampAndCount) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  tracer.record_stage(obs::Stage::kDecode, -5);
  EXPECT_EQ(tracer.nonmonotonic(), 1u);
  const HistogramSnapshot decode =
      registry.dump().histogram("mm_stage_decode_micros");
  EXPECT_EQ(decode.count(), 1u);
  EXPECT_EQ(decode.buckets[0], 1u);  // clamped to 0
  // A commit stamped before the batch's submit stamp clamps too.
  BlockPtr block = make_block(0, 2, /*submitted_at=*/9'000);
  tracer.sub_dag_committed(make_sub_dag({block}), 5'000);
  EXPECT_GE(tracer.nonmonotonic(), 2u);
}

TEST_F(ObsTracerTest, CommittedWithoutInsertStampIsSkipped) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  // No block_inserted call: commit-wait has no opening stamp and records
  // nothing (re-delivered or recovered blocks).
  tracer.sub_dag_committed(make_sub_dag({make_block(0, 3)}), 5'000);
  EXPECT_EQ(registry.dump().histogram("mm_stage_commit_wait_micros").count(), 0u);
}

TEST(ObsTracerEviction, InsertTableIsFifoBounded) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  // Synthetic digests: the table must cap at 2^16 without leaking.
  for (std::uint32_t i = 0; i < (1u << 16) + 100; ++i) {
    Digest d{};
    std::memcpy(d.bytes.data(), &i, sizeof(i));
    tracer.block_inserted(d, i);
  }
  // The oldest 100 aged out; a commit touching one of them records nothing.
  SUCCEED();
}

// ----- Watchdog --------------------------------------------------------------

TEST(ObsWatchdog, StallsPastBudgetCountAndRatchet) {
  obs::Registry registry;
  obs::LoopWatchdogOptions options;
  options.stall_budget = 100;
  options.warn_interval = 1'000'000;
  obs::LoopWatchdog watchdog(registry, options, "test");
  watchdog.observe_tick(50, 1'000);   // under budget
  watchdog.observe_tick(500, 2'000);  // stall
  watchdog.observe_tick(300, 3'000);  // stall, smaller
  EXPECT_EQ(watchdog.stalls(), 2u);
  const obs::MetricsSnapshot snap = registry.dump();
  EXPECT_EQ(snap.counter_value("mm_loop_stalls_total"), 2u);
  EXPECT_EQ(snap.gauge_value("mm_loop_max_stall_micros"), 500);
  EXPECT_EQ(snap.histogram("mm_loop_tick_busy_micros").count(), 3u);
}

// ----- LatencyRecorder (lazy sort) -------------------------------------------

TEST(LatencyRecorderTest, PercentilesResortAfterNewSamples) {
  LatencyRecorder recorder;
  recorder.record(3'000'000, 1);
  recorder.record(1'000'000, 1);
  recorder.record(2'000'000, 1);
  // First read sorts lazily.
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(50), 2.0);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(100), 3.0);
  // A new out-of-order sample must invalidate the cached sort.
  recorder.record(500'000, 1);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(25), 0.5);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(50), 1.0);
  EXPECT_EQ(recorder.count(), 4u);
  // Weighted samples count per transaction.
  LatencyRecorder weighted;
  weighted.record(1'000'000, 9);
  weighted.record(2'000'000, 1);
  EXPECT_DOUBLE_EQ(weighted.percentile_seconds(50), 1.0);
  EXPECT_DOUBLE_EQ(weighted.percentile_seconds(95), 2.0);
}

// ----- Structured log context ------------------------------------------------

TEST(LogContext, FormatLinePrependsContext) {
  set_log_context("");
  EXPECT_EQ(detail::format_line(LogLevel::kWarn, "plain"), "[WARN ] plain");
  set_log_context("v3/wal");
  EXPECT_EQ(detail::format_line(LogLevel::kInfo, "hello"), "[INFO ] [v3/wal] hello");
  set_log_context("");
}

// ----- Deterministic sim-time spans ------------------------------------------

TEST(ObsSimSpans, MonotonicAndDeterministic) {
  sim::SimConfig config;
  config.n = 4;
  config.wan = false;
  config.load_tps = 500;
  config.duration = seconds(8);
  config.warmup = seconds(2);
  config.seed = 7;
  const sim::SimResult a = sim::run_simulation(config);
  // Virtual-time stamps can never run backwards, and every committed batch
  // carries a sim submit stamp, so finality is populated and exact.
  EXPECT_EQ(a.metrics.counter_value("mm_trace_nonmonotonic_total"), 0u);
  EXPECT_GT(a.metrics.histogram("mm_finality_micros").count(), 0u);
  EXPECT_GT(a.metrics.histogram("mm_stage_commit_wait_micros").count(), 0u);
  EXPECT_EQ(a.metrics.counter_value("mm_committed_transactions_total"),
            static_cast<std::uint64_t>(a.committed_tps * 6.0 + 0.5));
  // Same config, same seed: the whole dump is reproducible byte for byte.
  const sim::SimResult b = sim::run_simulation(config);
  EXPECT_EQ(obs::render_json(a.metrics), obs::render_json(b.metrics));
}

}  // namespace
}  // namespace mahimahi
