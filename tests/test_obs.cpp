// Observability layer tests: histogram bucket math, cross-thread shard
// merging, registry + callback metrics, exporter golden output, lifecycle
// tracer semantics (commit-wait spans, finality weighting, FIFO eviction),
// the loop-stall watchdog, the lazily-sorted LatencyRecorder, structured log
// context, and deterministic sim-time spans end to end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "client/metrics.h"
#include "common/log.h"
#include "core/commit_trace.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "sim/harness.h"
#include "types/block.h"
#include "validator/validator.h"

namespace mahimahi {
namespace {

using obs::bucket_upper_bound;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::kHistogramBuckets;

TEST(ObsHistogram, BucketBoundaries) {
  // bucket_of is bit_width: bucket 0 holds only 0, bucket i >= 1 holds
  // [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  for (std::size_t i = 1; i < kHistogramBuckets - 1; ++i) {
    // Both edges of every bucket land in it; the upper bound is inclusive.
    EXPECT_EQ(Histogram::bucket_of(1ull << (i - 1)), i) << i;
    EXPECT_EQ(Histogram::bucket_of(bucket_upper_bound(i)), i) << i;
  }
  // Values past the last bucket's range saturate into it.
  EXPECT_EQ(Histogram::bucket_of(~0ull), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_upper_bound(0), 0u);
  EXPECT_EQ(bucket_upper_bound(1), 1u);
  EXPECT_EQ(bucket_upper_bound(4), 15u);
}

TEST(ObsHistogram, RecordWeightAndNegativeClamp) {
  Histogram h;
  h.record(5, 3);    // bucket 3, weight 3
  h.record(-17);     // clamps to 0 -> bucket 0
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.buckets[3], 3u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.sum, 15u);
  EXPECT_DOUBLE_EQ(snap.mean(), 15.0 / 4.0);
}

TEST(ObsHistogram, PercentileWalksCumulative) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);   // bucket 4, ub 15
  for (int i = 0; i < 10; ++i) h.record(100);  // bucket 7, ub 127
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.percentile(0.50), 15u);
  EXPECT_EQ(snap.percentile(0.90), 15u);
  EXPECT_EQ(snap.percentile(0.95), 127u);
  EXPECT_EQ(snap.percentile(1.0), 127u);
  EXPECT_EQ(HistogramSnapshot{}.percentile(0.5), 0u);
}

TEST(ObsHistogram, PercentileEdgeCases) {
  // The pinned semantics documented on HistogramSnapshot::percentile.
  // Empty: 0 for every p, extremes included.
  EXPECT_EQ(HistogramSnapshot{}.percentile(0.0), 0u);
  EXPECT_EQ(HistogramSnapshot{}.percentile(1.0), 0u);
  // All mass in bucket 0 (every sample was 0): 0 for every p — not the
  // histogram's max range and not a sentinel.
  Histogram zeros;
  for (int i = 0; i < 100; ++i) zeros.record(0);
  const HistogramSnapshot zero_snap = zeros.snapshot();
  EXPECT_EQ(zero_snap.percentile(0.0), 0u);
  EXPECT_EQ(zero_snap.percentile(0.5), 0u);
  EXPECT_EQ(zero_snap.percentile(1.0), 0u);
  // A single sample is every percentile; p100 is its bucket bound (1000 ->
  // bucket 10, ub 1023), never the last populated bucket's theoretical max.
  Histogram one;
  one.record(1000);
  const HistogramSnapshot one_snap = one.snapshot();
  const std::uint64_t bound = bucket_upper_bound(Histogram::bucket_of(1000));
  EXPECT_EQ(bound, 1023u);
  EXPECT_EQ(one_snap.percentile(0.0), bound);
  EXPECT_EQ(one_snap.percentile(0.5), bound);
  EXPECT_EQ(one_snap.percentile(1.0), bound);
  // Out-of-range p clamps to the extremes rather than reading garbage.
  Histogram two;
  two.record(1);
  two.record(1000);
  EXPECT_EQ(two.snapshot().percentile(-0.5), 1u);
  EXPECT_EQ(two.snapshot().percentile(7.0), 1023u);
}

TEST(ObsHistogram, MergeIsElementwiseAddition) {
  Histogram a, b;
  a.record(3);
  b.record(3);
  b.record(1000, 2);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_EQ(merged.buckets[2], 2u);
  EXPECT_EQ(merged.sum, 3u + 3u + 2000u);
}

TEST(ObsRegistry, CrossThreadShardMerge) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("c");
  obs::Histogram& histogram = registry.histogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.record(i % 64);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every shard's contribution survives the merge, whatever stripe each
  // thread landed on.
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, SameNameReturnsSameMetricKindClashThrows) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
}

TEST(ObsRegistry, GaugeSemantics) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("g");
  gauge.set(-5);
  EXPECT_EQ(gauge.value(), -5);
  gauge.add(15);
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(7);  // lower: no effect
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(42);
  EXPECT_EQ(gauge.value(), 42);
}

TEST(ObsRegistry, CallbackMetricsEvaluateAtDump) {
  obs::Registry registry;
  std::uint64_t source = 7;
  registry.counter_fn("bridged_total", [&] { return source; });
  registry.gauge_fn("bridged_gauge", [&] { return static_cast<std::int64_t>(-3); });
  source = 9;  // dump must see the value at dump time, not registration time
  const obs::MetricsSnapshot snap = registry.dump();
  EXPECT_EQ(snap.counter_value("bridged_total"), 9u);
  EXPECT_EQ(snap.gauge_value("bridged_gauge"), -3);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsExport, PrometheusGolden) {
  obs::Registry registry("validator=\"3\"");
  registry.counter("mm_b_total", "A counter").add(5);
  registry.gauge("mm_c_gauge").set(-2);
  obs::Histogram& h = registry.histogram("mm_a_micros", "A histogram");
  h.record(0);
  h.record(3, 2);
  const std::string text = obs::render_prometheus(registry.dump());
  // std::map order: mm_a_micros, mm_b_total, mm_c_gauge. Buckets trim after
  // the last non-empty one (bucket 2, ub 3), then +Inf.
  const std::string expected =
      "# HELP mm_a_micros A histogram\n"
      "# TYPE mm_a_micros histogram\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"0\"} 1\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"1\"} 1\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"3\"} 3\n"
      "mm_a_micros_bucket{validator=\"3\",le=\"+Inf\"} 3\n"
      "mm_a_micros_sum{validator=\"3\"} 6\n"
      "mm_a_micros_count{validator=\"3\"} 3\n"
      "# HELP mm_b_total A counter\n"
      "# TYPE mm_b_total counter\n"
      "mm_b_total{validator=\"3\"} 5\n"
      "# TYPE mm_c_gauge gauge\n"
      "mm_c_gauge{validator=\"3\"} -2\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsExport, PrometheusNoLabels) {
  obs::Registry registry;
  registry.counter("plain_total").add(1);
  EXPECT_EQ(obs::render_prometheus(registry.dump()),
            "# TYPE plain_total counter\nplain_total 1\n");
}

TEST(ObsExport, JsonGolden) {
  obs::Registry registry("validator=\"3\"");
  registry.counter("mm_b_total").add(5);
  registry.gauge("mm_c_gauge").set(-2);
  obs::Histogram& h = registry.histogram("mm_a_micros");
  h.record(0);
  h.record(3, 2);
  const std::string expected =
      "{\"labels\":\"validator=\\\"3\\\"\","
      "\"counters\":{\"mm_b_total\":5},"
      "\"gauges\":{\"mm_c_gauge\":-2},"
      "\"histograms\":{\"mm_a_micros\":{\"count\":3,\"sum\":6,"
      "\"buckets\":[[0,1],[3,2]]}}}";
  EXPECT_EQ(obs::render_json(registry.dump()), expected);
}

// ----- Lifecycle tracer ------------------------------------------------------

class ObsTracerTest : public ::testing::Test {
 protected:
  ObsTracerTest() : setup_(Committee::make_test(4)) {}

  BlockPtr make_block(ValidatorId author, std::uint64_t marker,
                      TimeMicros submitted_at = 0, std::uint32_t count = 1) {
    std::vector<BlockRef> refs;
    for (ValidatorId v = 0; v < 4; ++v) {
      refs.push_back(Block::genesis(v, setup_.committee.coin()).ref());
    }
    TxBatch batch;
    batch.id = marker;
    batch.submitted_at = submitted_at;
    batch.count = count;
    return std::make_shared<const Block>(
        Block::make(author, 1, refs, {batch},
                    setup_.committee.coin().share(author, 1),
                    setup_.keypairs[author].private_key));
  }

  CommittedSubDag make_sub_dag(std::vector<BlockPtr> blocks) {
    CommittedSubDag sub_dag;
    sub_dag.slot = SlotId{1, 0};
    sub_dag.leader = blocks.back();
    sub_dag.blocks = std::move(blocks);
    return sub_dag;
  }

  Committee::TestSetup setup_;
};

TEST_F(ObsTracerTest, CommitWaitAndFinalitySpans) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  BlockPtr block = make_block(0, 1, /*submitted_at=*/100, /*count=*/10);
  tracer.block_inserted(block->digest(), 1'000);
  tracer.sub_dag_committed(make_sub_dag({block}), 5'000);

  const obs::MetricsSnapshot snap = registry.dump();
  const HistogramSnapshot wait = snap.histogram("mm_stage_commit_wait_micros");
  EXPECT_EQ(wait.count(), 1u);
  EXPECT_EQ(wait.sum, 4'000u);  // 5000 - 1000
  // Finality weighted by the batch's transaction count.
  const HistogramSnapshot finality = snap.histogram("mm_finality_micros");
  EXPECT_EQ(finality.count(), 10u);
  EXPECT_EQ(finality.sum, 10u * 4'900u);  // 5000 - 100 each
  EXPECT_EQ(tracer.nonmonotonic(), 0u);
  EXPECT_EQ(snap.counter_value("mm_trace_nonmonotonic_total"), 0u);
}

TEST_F(ObsTracerTest, UnstampedBatchesSkipFinality) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  // submitted_at == 0: drivers that do not stamp (the TCP runtime's wire
  // path) must not pollute finality with bogus epoch-start deltas.
  tracer.sub_dag_committed(make_sub_dag({make_block(0, 1, 0)}), 5'000);
  const obs::MetricsSnapshot snap = registry.dump();
  EXPECT_EQ(snap.histogram("mm_finality_micros").count(), 0u);
  EXPECT_EQ(snap.counter_value("mm_trace_finality_unstamped_total"), 1u);
}

TEST_F(ObsTracerTest, NonMonotonicStampsClampAndCount) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  tracer.record_stage(obs::Stage::kDecode, -5);
  EXPECT_EQ(tracer.nonmonotonic(), 1u);
  const HistogramSnapshot decode =
      registry.dump().histogram("mm_stage_decode_micros");
  EXPECT_EQ(decode.count(), 1u);
  EXPECT_EQ(decode.buckets[0], 1u);  // clamped to 0
  // A commit stamped before the batch's submit stamp clamps too.
  BlockPtr block = make_block(0, 2, /*submitted_at=*/9'000);
  tracer.sub_dag_committed(make_sub_dag({block}), 5'000);
  EXPECT_GE(tracer.nonmonotonic(), 2u);
}

TEST_F(ObsTracerTest, CommittedWithoutInsertStampIsSkipped) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  // No block_inserted call: commit-wait has no opening stamp and records
  // nothing (re-delivered or recovered blocks).
  tracer.sub_dag_committed(make_sub_dag({make_block(0, 3)}), 5'000);
  EXPECT_EQ(registry.dump().histogram("mm_stage_commit_wait_micros").count(), 0u);
}

TEST(ObsTracerEviction, InsertTableIsFifoBounded) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  // Synthetic digests: the table must cap at 2^16 without leaking.
  for (std::uint32_t i = 0; i < (1u << 16) + 100; ++i) {
    Digest d{};
    std::memcpy(d.bytes.data(), &i, sizeof(i));
    tracer.block_inserted(d, i);
  }
  // The oldest 100 aged out; a commit touching one of them records nothing.
  SUCCEED();
}

// ----- Watchdog --------------------------------------------------------------

TEST(ObsWatchdog, StallsPastBudgetCountAndRatchet) {
  obs::Registry registry;
  obs::LoopWatchdogOptions options;
  options.stall_budget = 100;
  options.warn_interval = 1'000'000;
  obs::LoopWatchdog watchdog(registry, options, "test");
  watchdog.observe_tick(50, 1'000);   // under budget
  watchdog.observe_tick(500, 2'000);  // stall
  watchdog.observe_tick(300, 3'000);  // stall, smaller
  EXPECT_EQ(watchdog.stalls(), 2u);
  const obs::MetricsSnapshot snap = registry.dump();
  EXPECT_EQ(snap.counter_value("mm_loop_stalls_total"), 2u);
  EXPECT_EQ(snap.gauge_value("mm_loop_max_stall_micros"), 500);
  EXPECT_EQ(snap.histogram("mm_loop_tick_busy_micros").count(), 3u);
}

// ----- LatencyRecorder (lazy sort) -------------------------------------------

TEST(LatencyRecorderTest, PercentilesResortAfterNewSamples) {
  LatencyRecorder recorder;
  recorder.record(3'000'000, 1);
  recorder.record(1'000'000, 1);
  recorder.record(2'000'000, 1);
  // First read sorts lazily.
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(50), 2.0);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(100), 3.0);
  // A new out-of-order sample must invalidate the cached sort.
  recorder.record(500'000, 1);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(25), 0.5);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(50), 1.0);
  EXPECT_EQ(recorder.count(), 4u);
  // Weighted samples count per transaction.
  LatencyRecorder weighted;
  weighted.record(1'000'000, 9);
  weighted.record(2'000'000, 1);
  EXPECT_DOUBLE_EQ(weighted.percentile_seconds(50), 1.0);
  EXPECT_DOUBLE_EQ(weighted.percentile_seconds(95), 2.0);
}

// ----- Structured log context ------------------------------------------------

TEST(LogContext, FormatLinePrependsContext) {
  set_log_context("");
  EXPECT_EQ(detail::format_line(LogLevel::kWarn, "plain"), "[WARN ] plain");
  set_log_context("v3/wal");
  EXPECT_EQ(detail::format_line(LogLevel::kInfo, "hello"), "[INFO ] [v3/wal] hello");
  set_log_context("");
}

// ----- Deterministic sim-time spans ------------------------------------------

TEST(ObsSimSpans, MonotonicAndDeterministic) {
  sim::SimConfig config;
  config.n = 4;
  config.wan = false;
  config.load_tps = 500;
  config.duration = seconds(8);
  config.warmup = seconds(2);
  config.seed = 7;
  const sim::SimResult a = sim::run_simulation(config);
  // Virtual-time stamps can never run backwards, and every committed batch
  // carries a sim submit stamp, so finality is populated and exact.
  EXPECT_EQ(a.metrics.counter_value("mm_trace_nonmonotonic_total"), 0u);
  EXPECT_GT(a.metrics.histogram("mm_finality_micros").count(), 0u);
  EXPECT_GT(a.metrics.histogram("mm_stage_commit_wait_micros").count(), 0u);
  EXPECT_EQ(a.metrics.counter_value("mm_committed_transactions_total"),
            static_cast<std::uint64_t>(a.committed_tps * 6.0 + 0.5));
  // Same config, same seed: the whole dump is reproducible byte for byte.
  const sim::SimResult b = sim::run_simulation(config);
  EXPECT_EQ(obs::render_json(a.metrics), obs::render_json(b.metrics));
}

// ----- Flight recorder -------------------------------------------------------

TEST(FlightRecorder, RecordSnapshotAndPayloads) {
  obs::FlightRecorder recorder;
  recorder.label_thread("loop");
  recorder.record(obs::FlightEventType::kFrameRx, 100, /*a=*/3, /*b=*/4096);
  recorder.record(obs::FlightEventType::kBlockInsert, 250, /*a=*/1, /*b=*/17);
  recorder.record(obs::FlightEventType::kCommit, 900, /*a=*/2, /*b=*/20);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, obs::FlightEventType::kFrameRx);
  EXPECT_EQ(events[0].at, 100);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].b, 4096u);
  EXPECT_EQ(events[0].label, "loop");
  EXPECT_EQ(events[2].type, obs::FlightEventType::kCommit);
  EXPECT_EQ(recorder.ring_count(), 1u);
  EXPECT_EQ(obs::flight_event_name(events[2].type), "commit");
}

TEST(FlightRecorder, WrapKeepsTheNewestEvents) {
  obs::FlightRecorder recorder(obs::FlightRecorder::Options{8});
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.record(obs::FlightEventType::kFrameTx, static_cast<TimeMicros>(i), i);
  }
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring holds exactly the last capacity events; older ones are gone.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12u + i);
  }
}

TEST(FlightRecorder, BinaryRoundtripMatchesSnapshot) {
  obs::FlightRecorder recorder;
  recorder.label_thread("wal");
  recorder.record(obs::FlightEventType::kWalFlush, 10, 5, 1024);
  recorder.record(obs::FlightEventType::kCheckpointCut, 20, 40, 2);
  const Bytes dump = recorder.snapshot_binary();
  const auto decoded = obs::FlightRecorder::decode({dump.data(), dump.size()});
  const auto live = recorder.snapshot();
  ASSERT_EQ(decoded.size(), live.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].at, live[i].at);
    EXPECT_EQ(decoded[i].type, live[i].type);
    EXPECT_EQ(decoded[i].a, live[i].a);
    EXPECT_EQ(decoded[i].b, live[i].b);
    EXPECT_EQ(decoded[i].label, live[i].label);
    EXPECT_EQ(decoded[i].thread_tag, live[i].thread_tag);
  }
  // Malformed input throws instead of misrendering.
  const Bytes junk = {'N', 'O', 'P', 'E'};
  EXPECT_THROW(obs::FlightRecorder::decode({junk.data(), junk.size()}),
               std::runtime_error);
  EXPECT_THROW(obs::FlightRecorder::decode({dump.data(), dump.size() - 3}),
               std::runtime_error);
}

TEST(FlightRecorder, PerThreadRingsMergeChronologically) {
  obs::FlightRecorder recorder;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      recorder.label_thread("worker" + std::to_string(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        recorder.record(obs::FlightEventType::kBlockAdmit,
                        static_cast<TimeMicros>(i * kThreads + t),
                        static_cast<std::uint64_t>(t), i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto events = recorder.snapshot();
  EXPECT_EQ(events.size(), kThreads * kPerThread);
  EXPECT_EQ(recorder.ring_count(), static_cast<std::size_t>(kThreads));
  // Merged view is chronological across rings, and every ring kept its label.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  for (const auto& event : events) {
    EXPECT_EQ(event.label, "worker" + std::to_string(event.a));
  }
}

TEST(FlightRecorder, DumpFileRendersWithScript) {
  obs::FlightRecorder recorder;
  recorder.label_thread("loop");
  recorder.record(obs::FlightEventType::kFrameRx, 1000, 2, 512);
  recorder.record(obs::FlightEventType::kCommit, 2000, 1, 30);
  recorder.record(obs::FlightEventType::kStall, 3000, 9000, 500);
  const std::string path = ::testing::TempDir() + "flightrec-test.bin";
  ASSERT_TRUE(recorder.dump_to_file(path));
  // The file round-trips through the in-process decoder...
  std::ifstream in(path, std::ios::binary);
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(obs::FlightRecorder::decode({data.data(), data.size()}).size(), 3u);
  // ...and through the renderer script, which must exit 0 on a good dump.
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const std::filesystem::path script =
      std::filesystem::path(__FILE__).parent_path().parent_path() / "scripts" /
      "render_flightrec.py";
  const std::string rendered = ::testing::TempDir() + "flightrec-test.txt";
  const std::string command =
      "python3 " + script.string() + " " + path + " > " + rendered + " 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  std::ifstream text(rendered);
  const std::string output((std::istreambuf_iterator<char>(text)),
                           std::istreambuf_iterator<char>());
  EXPECT_NE(output.find("frame_rx"), std::string::npos);
  EXPECT_NE(output.find("stall"), std::string::npos);
  EXPECT_NE(output.find("loop"), std::string::npos);
}

// ----- Commit forensics ------------------------------------------------------

using CommitForensicsTest = ObsTracerTest;

TEST_F(CommitForensicsTest, ClosingArrivalAttribution) {
  CommitForensics forensics;
  BlockPtr early = make_block(0, 1);
  BlockPtr late = make_block(1, 2);
  BlockPtr leader = make_block(2, 3);
  forensics.block_arrived(early->digest(), 1'000);
  forensics.block_arrived(late->digest(), 5'000);
  forensics.block_arrived(leader->digest(), 3'000);
  // Re-delivery must not move the stamp: the first arrival is the real one.
  forensics.block_arrived(late->digest(), 9'999);

  const CommitTrace& trace =
      forensics.on_committed(make_sub_dag({early, late, leader}), 6'000);
  EXPECT_EQ(trace.slot.round, 1u);
  EXPECT_EQ(trace.leader_author, 2u);
  EXPECT_EQ(trace.blocks, 3u);
  EXPECT_EQ(trace.first_arrival, 1'000);
  ASSERT_EQ(trace.arrivals.size(), 3u);
  EXPECT_EQ(trace.arrivals[0].offset_micros, 0);
  EXPECT_EQ(trace.arrivals[1].offset_micros, 4'000);
  EXPECT_EQ(trace.arrivals[2].offset_micros, 2'000);
  // Straggler attribution: author 1's block arrived last and closed the wave.
  EXPECT_EQ(trace.closing_author, 1u);
  EXPECT_EQ(trace.closing_offset_micros, 4'000);
  EXPECT_FALSE(trace.arrivals[0].closed_wave);
  EXPECT_TRUE(trace.arrivals[1].closed_wave);
  EXPECT_FALSE(trace.arrivals[2].closed_wave);
}

TEST_F(CommitForensicsTest, TiesResolveToTheCausallyLatestBlock) {
  CommitForensics forensics;
  BlockPtr first = make_block(0, 1);
  BlockPtr leader = make_block(1, 2);
  // Same batch, same stamp (one verify drain delivered both): the causally
  // later block — the leader, last in the sub-DAG order — closed the wave.
  forensics.block_arrived(first->digest(), 2'000);
  forensics.block_arrived(leader->digest(), 2'000);
  const CommitTrace& trace =
      forensics.on_committed(make_sub_dag({first, leader}), 3'000);
  EXPECT_EQ(trace.closing_author, 1u);
  EXPECT_TRUE(trace.arrivals[1].closed_wave);
}

TEST_F(CommitForensicsTest, UnstampedBlocksAndAsyncResolution) {
  CommitForensics forensics;
  BlockPtr stamped = make_block(0, 1);
  BlockPtr recovered = make_block(1, 2);  // e.g. WAL replay: never stamped
  forensics.block_arrived(stamped->digest(), 4'000);
  CommitTrace& trace =
      forensics.on_committed(make_sub_dag({recovered, stamped}), 5'000);
  EXPECT_FALSE(trace.arrivals[0].stamped);
  EXPECT_TRUE(trace.arrivals[1].stamped);
  EXPECT_EQ(trace.closing_author, 0u);  // only stamped arrivals attribute

  trace.durable_pending = true;
  trace.execute_pending = true;
  forensics.durable_ack(5'400);
  EXPECT_EQ(forensics.traces().back().durable_micros, 400);
  EXPECT_FALSE(forensics.traces().back().durable_pending);
  // execute_done matches on slot, resolves once.
  forensics.execute_done(SlotId{9, 9}, 6'000);  // wrong slot: no effect
  EXPECT_TRUE(forensics.traces().back().execute_pending);
  forensics.execute_done(trace.slot, 6'500);
  EXPECT_EQ(forensics.traces().back().execute_micros, 1'500);
  EXPECT_FALSE(forensics.traces().back().execute_pending);
}

TEST_F(CommitForensicsTest, BoundedBuffersAndDeterministicJson) {
  CommitForensics forensics(CommitForensics::Options{.trace_capacity = 2});
  BlockPtr a = make_block(0, 1);
  forensics.block_arrived(a->digest(), 100);
  for (int i = 0; i < 3; ++i) {
    forensics.on_committed(make_sub_dag({a}), 200 + i);
  }
  EXPECT_EQ(forensics.traces().size(), 2u);  // oldest aged out
  EXPECT_EQ(forensics.traces().front().committed_at, 201);

  // Identical inputs render identical JSON (the sim determinism contract),
  // and the rendering carries the attribution fields.
  CommitForensics x, y;
  for (CommitForensics* f : {&x, &y}) {
    f->block_arrived(a->digest(), 100);
    f->on_committed(make_sub_dag({a}), 250);
  }
  EXPECT_EQ(x.to_json(), y.to_json());
  EXPECT_NE(x.to_json().find("\"closing\""), std::string::npos);
  EXPECT_NE(x.to_json().find("\"closed_wave\":true"), std::string::npos);
  EXPECT_EQ(commit_traces_json({}), "{\"traces\":[]}");
}

// ----- Sim commit forensics (virtual time, deterministic) --------------------

TEST(ObsSimForensics, TracesAreDeterministicAndAttributed) {
  sim::SimConfig config;
  config.n = 4;
  config.wan = false;
  config.load_tps = 500;
  config.duration = seconds(6);
  config.warmup = seconds(1);
  config.seed = 21;
  const sim::SimResult a = sim::run_simulation(config);
  ASSERT_FALSE(a.commit_traces.empty());
  std::size_t stamped_traces = 0;
  for (const CommitTrace& trace : a.commit_traces) {
    EXPECT_GT(trace.blocks, 0u);
    ASSERT_EQ(trace.arrivals.size(), trace.blocks);
    // Genesis blocks predate the run (never inserted via actions) and stay
    // unstamped; among stamped arrivals exactly one closed the wave, at the
    // largest offset, and the commit follows every arrival in virtual time.
    std::size_t stamped = 0;
    std::size_t closed = 0;
    TimeMicros max_offset = 0;
    for (const auto& arrival : trace.arrivals) {
      if (!arrival.stamped) {
        EXPECT_FALSE(arrival.closed_wave);
        continue;
      }
      ++stamped;
      if (arrival.closed_wave) ++closed;
      max_offset = std::max(max_offset, arrival.offset_micros);
    }
    if (stamped > 0) {
      ++stamped_traces;
      EXPECT_EQ(closed, 1u);
      EXPECT_EQ(trace.closing_offset_micros, max_offset);
      EXPECT_GE(trace.committed_at, trace.first_arrival);
    } else {
      EXPECT_EQ(closed, 0u);
    }
  }
  // The steady-state commits are all attributable.
  EXPECT_GT(stamped_traces, a.commit_traces.size() / 2);
  // Byte-identical across identical seeded runs: straggler attribution is a
  // pure function of (config, seed).
  const sim::SimResult b = sim::run_simulation(config);
  EXPECT_EQ(commit_traces_json(a.commit_traces), commit_traces_json(b.commit_traces));
  // And the sim twin of the runtime's rx-lag histogram is populated.
  EXPECT_GT(a.metrics.histogram("mm_peer_rx_lag_micros").count(), 0u);
}

}  // namespace
}  // namespace mahimahi
