// Unit tests for the Tusk baseline commit rule (certified-DAG comparator).
#include <gtest/gtest.h>

#include "baselines/tusk.h"
#include "sim/dag_builder.h"

namespace mahimahi {
namespace {

ValidatorId tusk_leader(const DagBuilder& builder, Round propose_round) {
  return static_cast<ValidatorId>(
      builder.committee().coin().value(propose_round + 1) % builder.n());
}

TEST(Tusk, WaveGeometry) {
  DagBuilder builder(4);
  TuskCommitter committer(builder.dag(), builder.committee(), {});
  EXPECT_EQ(committer.next_pending_slot(), (SlotId{1, 0}));
}

TEST(Tusk, DirectCommitWithSupportQuorum) {
  DagBuilder builder(4);
  TuskCommitter committer(builder.dag(), builder.committee(), {});
  // Rounds 1-2 fully connected: the round-1 leader has 4 >= f+1 supporters.
  builder.build_fully_connected(2);
  const auto committed = committer.try_commit();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].slot, (SlotId{1, 0}));
  EXPECT_EQ(committed[0].leader->author(), tusk_leader(builder, 1));
  EXPECT_EQ(committer.stats().direct_commits, 1u);
}

TEST(Tusk, LeaderRevealGatedOnSupportRound) {
  DagBuilder builder(4);
  TuskCommitter committer(builder.dag(), builder.committee(), {});
  builder.build_fully_connected(1);
  EXPECT_FALSE(committer.slot_leader({1, 0}).has_value());
  builder.add_full_round(2, {0, 1, 2});
  EXPECT_TRUE(committer.slot_leader({1, 0}).has_value());
}

TEST(Tusk, MissingLeaderResolvedByNextCommittedLeader) {
  DagBuilder builder(4);
  TuskCommitter committer(builder.dag(), builder.committee(), {});
  const ValidatorId leader = tusk_leader(builder, 1);

  // Round 1 without the leader; rounds 2-4 full (among the alive).
  std::vector<ValidatorId> alive;
  for (ValidatorId v = 0; v < 4; ++v) {
    if (v != leader) alive.push_back(v);
  }
  builder.add_full_round(1, alive);
  builder.build_fully_connected(4);

  const auto committed = committer.try_commit();
  // Slot 1 skipped (indirectly, via the committed wave-2 leader), slot 3
  // committed.
  ASSERT_GE(committer.decided_sequence().size(), 2u);
  EXPECT_EQ(committer.decided_sequence()[0].slot, (SlotId{1, 0}));
  EXPECT_EQ(committer.decided_sequence()[0].kind, SlotDecision::Kind::kSkip);
  EXPECT_EQ(committer.decided_sequence()[0].via, SlotDecision::Via::kIndirect);
  EXPECT_EQ(committer.decided_sequence()[1].kind, SlotDecision::Kind::kCommit);
  ASSERT_FALSE(committed.empty());
}

TEST(Tusk, UnsupportedLeaderRecoversViaCausalLink) {
  DagBuilder builder(4);
  TuskCommitter committer(builder.dag(), builder.committee(), {});
  const ValidatorId leader = tusk_leader(builder, 1);

  // Round 1 full; round 2: only ONE support block references the leader
  // (f+1 = 2 needed for direct commit), others exclude it.
  const auto round1 = builder.add_full_round(1);
  const BlockPtr leader_block = round1[leader];
  bool supported_once = false;
  for (ValidatorId v = 0; v < 4; ++v) {
    std::vector<BlockRef> refs;
    for (const auto& block : round1) {
      if (block->digest() == leader_block->digest()) {
        if (supported_once) continue;  // only the first proposer supports
        supported_once = true;
      }
      refs.push_back(block->ref());
    }
    builder.add_block(v, 2, refs);
  }
  committer.try_commit();
  EXPECT_TRUE(committer.decided_sequence().empty()) << "direct rule must not fire";

  // Waves 2-3 fully connected. The wave-2 leader (round 3) commits directly;
  // since the round-2 support block (which references the round-1 leader) is
  // in its history, slot 1 commits indirectly.
  builder.build_fully_connected(6);
  committer.try_commit();
  ASSERT_GE(committer.decided_sequence().size(), 1u);
  EXPECT_EQ(committer.decided_sequence()[0].slot, (SlotId{1, 0}));
  EXPECT_EQ(committer.decided_sequence()[0].kind, SlotDecision::Kind::kCommit);
  EXPECT_EQ(committer.decided_sequence()[0].via, SlotDecision::Via::kIndirect);
}

TEST(Tusk, SequentialWavesCommitInOrder) {
  DagBuilder builder(4);
  TuskCommitter committer(builder.dag(), builder.committee(), {});
  builder.build_fully_connected(10);
  const auto committed = committer.try_commit();
  ASSERT_GE(committed.size(), 4u);
  for (std::size_t i = 1; i < committed.size(); ++i) {
    EXPECT_EQ(committed[i].slot.round, committed[i - 1].slot.round + 2);
  }
  // Every block is delivered exactly once across sub-DAGs.
  std::set<Digest> seen;
  for (const auto& sub_dag : committed) {
    for (const auto& block : sub_dag.blocks) {
      EXPECT_TRUE(seen.insert(block->digest()).second);
    }
  }
}

TEST(Tusk, ViewsAgree) {
  // Prefix consistency across two views (full vs truncated).
  DagBuilder builder(4);
  builder.build_fully_connected(12);

  Dag truncated(builder.committee());
  for (Round r = 1; r <= 8; ++r) {
    for (const auto& block : builder.dag().blocks_at(r)) truncated.insert(block);
  }

  TuskCommitter full(builder.dag(), builder.committee(), {});
  TuskCommitter partial(truncated, builder.committee(), {});
  std::vector<BlockRef> full_seq, partial_seq;
  for (const auto& sub_dag : full.try_commit()) {
    for (const auto& block : sub_dag.blocks) full_seq.push_back(block->ref());
  }
  for (const auto& sub_dag : partial.try_commit()) {
    for (const auto& block : sub_dag.blocks) partial_seq.push_back(block->ref());
  }
  ASSERT_LE(partial_seq.size(), full_seq.size());
  for (std::size_t i = 0; i < partial_seq.size(); ++i) {
    EXPECT_EQ(partial_seq[i], full_seq[i]) << "diverge at " << i;
  }
}

}  // namespace
}  // namespace mahimahi
