// Tests for the DAG store: insertion, slots, equivocation, causal queries,
// pruning, and the DagBuilder utilities.
#include <gtest/gtest.h>

#include "dag/dag.h"
#include "sim/dag_builder.h"

namespace mahimahi {
namespace {

TEST(Dag, StartsWithGenesis) {
  DagBuilder b(4);
  const Dag& dag = b.dag();
  EXPECT_EQ(dag.block_count(), 4u);
  EXPECT_EQ(dag.highest_round(), 0u);
  EXPECT_EQ(dag.distinct_authors_at(0), 4u);
  for (ValidatorId v = 0; v < 4; ++v) {
    ASSERT_EQ(dag.slot(0, v).size(), 1u);
    EXPECT_EQ(dag.slot(0, v).front()->author(), v);
  }
}

TEST(Dag, InsertAndLookup) {
  DagBuilder b(4);
  const auto blocks = b.add_full_round(1);
  EXPECT_EQ(b.dag().block_count(), 8u);
  EXPECT_EQ(b.dag().highest_round(), 1u);
  for (const auto& block : blocks) {
    EXPECT_TRUE(b.dag().contains(block->digest()));
    EXPECT_TRUE(b.dag().contains(block->ref()));
    EXPECT_EQ(b.dag().get(block->digest())->digest(), block->digest());
  }
  Digest unknown;
  unknown.bytes.fill(0xee);
  EXPECT_FALSE(b.dag().contains(unknown));
  EXPECT_EQ(b.dag().get(unknown), nullptr);
}

TEST(Dag, DuplicateInsertIsNoOp) {
  DagBuilder b(4);
  const auto blocks = b.add_full_round(1);
  Dag& dag = b.dag();
  EXPECT_FALSE(dag.insert(blocks[0]));
  EXPECT_EQ(dag.block_count(), 8u);
}

TEST(Dag, MissingParentThrows) {
  DagBuilder b(4);
  // A block referencing a parent that is not in the DAG.
  BlockRef bogus;
  bogus.round = 0;
  bogus.author = 0;
  bogus.digest.bytes.fill(0x77);
  auto setup = Committee::make_test(4);
  const auto block = std::make_shared<const Block>(
      Block::make(0, 1, {bogus}, {}, setup.committee.coin().share(0, 1),
                  setup.keypairs[0].private_key));
  EXPECT_THROW(b.dag().insert(block), std::logic_error);
}

TEST(Dag, EquivocationsShareSlot) {
  DagBuilder b(4);
  b.add_full_round(1);
  // Author 0 equivocates at round 2: two different blocks.
  const auto parents = b.dag().blocks_at(1);
  TxBatch marker;
  marker.id = 1;
  std::vector<BlockRef> refs;
  for (const auto& parent : parents) refs.push_back(parent->ref());
  const auto b1 = b.add_block(0, 2, refs);
  const auto b2 = b.add_block(0, 2, refs, {marker});
  EXPECT_NE(b1->digest(), b2->digest());
  EXPECT_EQ(b.dag().slot(2, 0).size(), 2u);
  EXPECT_EQ(b.dag().distinct_authors_at(2), 1u);
  EXPECT_EQ(b.dag().blocks_at(2).size(), 2u);
}

TEST(Dag, DistinctAuthorCounting) {
  DagBuilder b(7);
  b.add_full_round(1, {0, 1, 2, 3, 4});
  EXPECT_EQ(b.dag().distinct_authors_at(1), 5u);
  EXPECT_EQ(b.dag().distinct_authors_at(2), 0u);
  EXPECT_EQ(b.dag().distinct_authors_at(99), 0u);
}

TEST(Dag, ForEachAtStopsEarly) {
  DagBuilder b(4);
  b.add_full_round(1);
  int visited = 0;
  b.dag().for_each_at(1, [&](const BlockPtr&) {
    ++visited;
    return visited < 2;
  });
  EXPECT_EQ(visited, 2);
}

TEST(Dag, IsLinkDirectAndTransitive) {
  DagBuilder b(4);
  b.build_fully_connected(3);
  const Dag& dag = b.dag();
  const BlockPtr top = dag.slot(3, 0).front();
  // Fully connected: everything below is linked.
  for (Round r = 0; r < 3; ++r) {
    for (ValidatorId v = 0; v < 4; ++v) {
      EXPECT_TRUE(dag.is_link(dag.slot(r, v).front()->ref(), *top))
          << "r" << r << " v" << v;
    }
  }
  // Self-link.
  EXPECT_TRUE(dag.is_link(top->ref(), *top));
  // No link to a same-round sibling or to a higher round.
  EXPECT_FALSE(dag.is_link(dag.slot(3, 1).front()->ref(), *top));
  EXPECT_FALSE(dag.is_link(top->ref(), *dag.slot(2, 0).front()));
}

TEST(Dag, IsLinkRespectsPartialReferences) {
  DagBuilder b(4);
  // Round 1: only 3 validators produce blocks (0 is silent).
  const auto round1 = b.add_full_round(1, {1, 2, 3});
  // Round 2 by validator 1, referencing only those three blocks.
  const auto round2 = b.add_block_from(1, 2, round1);
  // Genesis of validator 0 is reachable (via round-1 parents referencing all
  // genesis blocks), but no round-1 block of validator 0 exists.
  EXPECT_TRUE(b.dag().is_link(b.dag().slot(0, 0).front()->ref(), *round2));
  // A round-1 block NOT referenced is unreachable: build one now.
  const auto late = b.add_full_round(1, {0});
  EXPECT_FALSE(b.dag().is_link(late.front()->ref(), *round2));
}

TEST(Dag, PruneDropsOldRounds) {
  DagBuilder b(4);
  b.build_fully_connected(5);
  Dag& dag = b.dag();
  const auto victim = dag.slot(1, 0).front();
  dag.prune_below(3);
  EXPECT_EQ(dag.pruned_below(), 3u);
  EXPECT_FALSE(dag.contains(victim->digest()));
  EXPECT_TRUE(dag.slot(1, 0).empty());
  EXPECT_EQ(dag.distinct_authors_at(2), 0u);
  EXPECT_TRUE(dag.contains(dag.slot(3, 0).front()->digest()));
  EXPECT_EQ(dag.highest_round(), 5u);
  // Idempotent / monotonic.
  dag.prune_below(2);
  EXPECT_EQ(dag.pruned_below(), 3u);
}

TEST(DagBuilder, FullRoundsSatisfyQuorum) {
  DagBuilder b(10);
  b.build_fully_connected(4);
  EXPECT_EQ(b.dag().distinct_authors_at(4), 10u);
  // Every block references all 10 previous-round blocks.
  for (const auto& block : b.dag().blocks_at(4)) {
    EXPECT_EQ(block->parents().size(), 10u);
  }
}

TEST(DagBuilder, RandomNetworkRoundSamplesQuorum) {
  DagBuilder b(10, /*seed=*/1);
  Rng rng(5);
  b.add_full_round(1);
  const auto round2 = b.add_random_network_round(2, rng);
  EXPECT_EQ(round2.size(), 10u);
  for (const auto& block : round2) {
    // 2f+1 = 7 sampled parents, plus possibly the author's own block.
    EXPECT_GE(block->parents().size(), 7u);
    EXPECT_LE(block->parents().size(), 8u);
    // All parents distinct.
    std::set<Digest> digests;
    for (const auto& parent : block->parents()) digests.insert(parent.digest);
    EXPECT_EQ(digests.size(), block->parents().size());
  }
}

TEST(DagBuilder, AdversarialRoundSuppressesTargets) {
  DagBuilder b(10, /*seed=*/2);
  b.add_full_round(1);
  // Suppress validators 0 and 1: with 10 authors alive, the remaining 8 >=
  // quorum 7, so nobody references the suppressed blocks.
  const auto round2 = b.add_adversarial_round(2, {0, 1});
  for (const auto& block : round2) {
    for (const auto& parent : block->parents()) {
      EXPECT_NE(parent.author, 0u);
      EXPECT_NE(parent.author, 1u);
    }
  }
}

TEST(DagBuilder, AdversarialRoundYieldsWhenQuorumNeedsTargets) {
  DagBuilder b(4, /*seed=*/3);
  b.add_full_round(1);
  // Suppressing 2 of 4 would leave 2 < quorum 3: the adversary must let one
  // suppressed block through.
  const auto round2 = b.add_adversarial_round(2, {0, 1});
  for (const auto& block : round2) {
    EXPECT_GE(block->parents().size(), 3u);
  }
}

}  // namespace
}  // namespace mahimahi
