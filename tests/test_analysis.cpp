// Tests for the Appendix C closed forms, including a Monte-Carlo
// cross-check of the direct-commit bound against DAGs generated under the
// adversarial message schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/commit_probability.h"
#include "core/committer.h"
#include "sim/dag_builder.h"

namespace mahimahi::analysis {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(0, 0), 1);
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, 1), 4);
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, 2), 6);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 3), 120);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 10), 1);
}

TEST(Binomial, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, 5), 0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, -1), 0);
}

TEST(Binomial, SymmetryAndPascal) {
  for (int n = 1; n <= 20; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(binomial_coefficient(n, k), binomial_coefficient(n, n - k),
                  1e-6 * binomial_coefficient(n, k))
          << "C(" << n << "," << k << ")";
      if (k >= 1) {
        EXPECT_NEAR(binomial_coefficient(n, k),
                    binomial_coefficient(n - 1, k - 1) + binomial_coefficient(n - 1, k),
                    1e-6 * binomial_coefficient(n, k));
      }
    }
  }
}

TEST(Hypergeometric, MatchesDirectEnumeration) {
  // Population 7 (f=2 committee), 5 marked (2f+1), draw 2: zero-success
  // probability = C(2,2)/C(7,2) = 1/21.
  EXPECT_NEAR(hypergeometric_zero_probability(7, 5, 2), 1.0 / 21.0, 1e-12);
  // Drawing more than the unmarked population forces a success.
  EXPECT_DOUBLE_EQ(hypergeometric_zero_probability(7, 5, 3), 0.0);
  // No draws -> certainly zero successes.
  EXPECT_DOUBLE_EQ(hypergeometric_zero_probability(7, 5, 0), 1.0);
}

TEST(Hypergeometric, MonteCarloAgreement) {
  // Sample the urn directly and compare frequencies to the closed form.
  Rng rng(99);
  const std::uint32_t population = 10, successes = 7, draws = 3;
  const int trials = 200'000;
  int zero_success_trials = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint32_t> urn(population);
    for (std::uint32_t i = 0; i < population; ++i) urn[i] = i;
    std::shuffle(urn.begin(), urn.end(), rng);
    bool any = false;
    for (std::uint32_t d = 0; d < draws; ++d) any |= urn[d] < successes;
    zero_success_trials += any ? 0 : 1;
  }
  const double measured = static_cast<double>(zero_success_trials) / trials;
  EXPECT_NEAR(measured, hypergeometric_zero_probability(population, successes, draws),
              0.005);
}

TEST(Lemma13, KnownValues) {
  // f=1: p* = 1 - C(1,l)/C(4,l). l=1 -> 3/4; l>f -> 1.
  EXPECT_NEAR(direct_commit_probability_w5(1, 1), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(direct_commit_probability_w5(1, 2), 1.0);
  // f=3: l=1 -> 1 - 3/10 = 0.7; l=2 -> 1 - C(3,2)/C(10,2) = 1 - 3/45.
  EXPECT_NEAR(direct_commit_probability_w5(3, 1), 0.7, 1e-12);
  EXPECT_NEAR(direct_commit_probability_w5(3, 2), 1.0 - 3.0 / 45.0, 1e-12);
  EXPECT_DOUBLE_EQ(direct_commit_probability_w5(3, 4), 1.0);
}

TEST(Lemma16, KnownValues) {
  // w=4: p* = l/(3f+1).
  EXPECT_NEAR(direct_commit_probability_w4(1, 1), 0.25, 1e-12);
  EXPECT_NEAR(direct_commit_probability_w4(1, 3), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(direct_commit_probability_w4(1, 4), 1.0);
  EXPECT_NEAR(direct_commit_probability_w4(3, 2), 0.2, 1e-12);
}

TEST(Dispatch, SelectsLemmaByWaveLength) {
  EXPECT_DOUBLE_EQ(direct_commit_probability(5, 1, 1),
                   direct_commit_probability_w5(1, 1));
  EXPECT_DOUBLE_EQ(direct_commit_probability(6, 1, 1),
                   direct_commit_probability_w5(1, 1));
  EXPECT_DOUBLE_EQ(direct_commit_probability(4, 1, 1),
                   direct_commit_probability_w4(1, 1));
  // w=3 has no liveness guarantee (Appendix C note).
  EXPECT_DOUBLE_EQ(direct_commit_probability(3, 1, 1), 0.0);
}

TEST(Lemma13, DominatesLemma16) {
  // The extra boost round can only help: for every (f, l) the w=5 bound is
  // at least the w=4 bound.
  for (std::uint32_t f = 1; f <= 8; ++f) {
    for (std::uint32_t leaders = 1; leaders <= 3 * f + 1; ++leaders) {
      EXPECT_GE(direct_commit_probability_w5(f, leaders) + 1e-12,
                direct_commit_probability_w4(f, leaders))
          << "f=" << f << " l=" << leaders;
    }
  }
}

TEST(Lemma13, MonotoneInLeaders) {
  for (std::uint32_t f : {1u, 2u, 3u, 5u}) {
    double previous = 0;
    for (std::uint32_t leaders = 1; leaders <= f + 1; ++leaders) {
      const double p = direct_commit_probability_w5(f, leaders);
      EXPECT_GE(p + 1e-12, previous) << "f=" << f << " l=" << leaders;
      previous = p;
    }
  }
}

TEST(Lemma17, BoundShrinksExponentially) {
  double previous = 1.0;
  for (std::uint32_t f = 4; f <= 30; ++f) {
    const double bound = random_model_unreachable_bound(f);
    EXPECT_LE(bound, previous) << "f=" << f;
    previous = bound;
  }
  // By f=30 the bound is vanishing.
  EXPECT_LT(random_model_unreachable_bound(30), 1e-3);
}

TEST(Tail, GeometricDecay) {
  const double p = 0.7;
  EXPECT_DOUBLE_EQ(undecided_tail_probability(p, 0), 1.0);
  EXPECT_NEAR(undecided_tail_probability(p, 1), 0.3, 1e-12);
  EXPECT_NEAR(undecided_tail_probability(p, 3), 0.027, 1e-12);
  EXPECT_DOUBLE_EQ(undecided_tail_probability(1.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(undecided_tail_probability(0.0, 5), 1.0);
}

TEST(Tail, ExpectedWaves) {
  EXPECT_DOUBLE_EQ(expected_waves_to_direct_commit(1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_waves_to_direct_commit(0.25), 4.0);
  EXPECT_TRUE(std::isinf(expected_waves_to_direct_commit(0.0)));
}

TEST(MessageDelays, PaperComparatives) {
  // §1/§6: Mahi-Mahi commits in 4-5 message delays vs Tusk's 9 and
  // DagRider's 12; Cordial Miners commits in 5.
  EXPECT_LT(mahi_mahi_message_delays(4), kCordialMinersMessageDelays);
  EXPECT_EQ(mahi_mahi_message_delays(5), kCordialMinersMessageDelays);
  EXPECT_LT(mahi_mahi_message_delays(5), kTuskMessageDelays);
  EXPECT_LT(kTuskMessageDelays, kDagRiderMessageDelays);
}

// --------------------------------------------------------------------------
// Monte-Carlo cross-check. Two adversaries:
//   * blind      — model-compliant: controls the schedule each round
//                  (suppresses a rotating set of f authors) but cannot
//                  predict the coin. The Lemma 13/16 bound must hold.
//   * prescient  — OUT of model: suppresses elected leaders before their
//                  coin opens. This is exactly the attack that the
//                  after-the-fact election (§2.3) exists to prevent; with a
//                  single leader slot it drives direct commits to zero,
//                  which is the justification for retrospective election.
// --------------------------------------------------------------------------

enum class Schedule { kBlind, kPrescient };

struct BoundCase {
  std::uint32_t wave_length;
  std::uint32_t f;
  std::uint32_t leaders;
  Schedule schedule = Schedule::kBlind;

  std::string label() const {
    std::string out = "w" + std::to_string(wave_length) + "_f" + std::to_string(f) +
                      "_l" + std::to_string(leaders);
    out += schedule == Schedule::kBlind ? "_blind" : "_prescient";
    return out;
  }
};

double measure_direct_rate(const BoundCase& param, std::uint64_t seed) {
  const std::uint32_t n = 3 * param.f + 1;
  CommitterOptions options;
  options.wave_length = param.wave_length;
  options.leaders_per_round = param.leaders;

  DagBuilder builder(n, /*committee seed=*/11);
  Rng rng(seed);
  constexpr Round kRounds = 90;
  for (Round r = 1; r <= kRounds; ++r) {
    std::vector<ValidatorId> suppressed;
    if (param.schedule == Schedule::kBlind) {
      // Rotating f victims, chosen without coin knowledge.
      for (std::uint32_t i = 0; i < param.f; ++i) {
        suppressed.push_back(static_cast<ValidatorId>((r + i) % n));
      }
    } else if (r >= 2) {
      // Cheats: reads the coin before it opens.
      for (std::uint32_t offset = 0; offset < param.leaders; ++offset) {
        suppressed.push_back(builder.leader_of({r - 1, offset}, options));
      }
    }
    if (suppressed.empty()) {
      builder.add_random_network_round(r, rng);
    } else {
      builder.add_adversarial_round(r, suppressed);
    }
  }
  Committer committer(builder.dag(), builder.committee(), options);
  committer.try_commit();
  std::set<Round> decided, direct;
  for (const auto& decision : committer.decided_sequence()) {
    decided.insert(decision.slot.round);
    if (decision.kind == SlotDecision::Kind::kCommit &&
        decision.via == SlotDecision::Via::kDirect) {
      direct.insert(decision.slot.round);
    }
  }
  if (decided.empty()) return 0.0;
  return static_cast<double>(direct.size()) / static_cast<double>(decided.size());
}

class BoundVsMeasured : public ::testing::TestWithParam<BoundCase> {};

TEST_P(BoundVsMeasured, BlindAdversaryRespectsBound) {
  const BoundCase param = GetParam();
  double rate_sum = 0;
  constexpr int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    rate_sum += measure_direct_rate(param, 1000 + trial);
  }
  const double measured = rate_sum / kTrials;
  const double bound =
      direct_commit_probability(param.wave_length, param.f, param.leaders);
  // Small sampling slack below the closed-form bound.
  EXPECT_GE(measured, bound - 0.08) << param.label() << " measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(
    Blind, BoundVsMeasured,
    ::testing::Values(BoundCase{5, 1, 1}, BoundCase{5, 1, 2}, BoundCase{5, 3, 1},
                      BoundCase{5, 3, 2}, BoundCase{4, 1, 1}, BoundCase{4, 1, 3},
                      BoundCase{4, 3, 2}),
    [](const ::testing::TestParamInfo<BoundCase>& info) { return info.param.label(); });

TEST(PrescientAdversary, DefeatsSingleLeaderDirectCommits) {
  // With coin prediction (impossible in the model) and one leader slot, the
  // adversary suppresses every leader: no direct commit survives. This is
  // the quantitative case for electing leaders after the fact.
  const BoundCase param{5, 3, 1, Schedule::kPrescient};
  EXPECT_LT(measure_direct_rate(param, 7), 0.05);
}

TEST(PrescientAdversary, MultipleLeadersRestoreProgressAtSmallScale) {
  // f=1: suppressing two of four authors leaves fewer than 2f+1 = 3 others,
  // so the schedule cannot exclude both leaders — some direct commits
  // survive even against the prescient adversary.
  const BoundCase param{5, 1, 2, Schedule::kPrescient};
  EXPECT_GT(measure_direct_rate(param, 7), 0.5);
}

}  // namespace
}  // namespace mahimahi::analysis
