// Adversarial-schedule integration tests (§2.1 asynchronous model).
//
// The adversary controls message delays (finitely — eventual delivery
// holds), so every property proven in Appendix C must survive each attack:
// agreement (prefix-consistent sequences), no spurious equivocations, and
// liveness once/while delivery allows. These tests run the full protocol
// through the simulator under each adversary in sim/adversary.h.
#include <gtest/gtest.h>

#include "sim/harness.h"

namespace mahimahi::sim {
namespace {

SimConfig attack_config(Protocol protocol = Protocol::kMahiMahi5) {
  SimConfig config;
  config.protocol = protocol;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(25);
  config.load_tps = 1'000;
  config.duration = seconds(16);
  config.warmup = seconds(2);
  config.record_sequences = true;
  config.seed = 5;
  return config;
}

void expect_prefix_consistent(const SimResult& result, const std::string& label) {
  const auto& sequences = result.sequences;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    for (std::size_t j = i + 1; j < sequences.size(); ++j) {
      const std::size_t common = std::min(sequences[i].size(), sequences[j].size());
      for (std::size_t k = 0; k < common; ++k) {
        ASSERT_EQ(sequences[i][k], sequences[j][k])
            << label << ": validators " << i << " and " << j << " diverge at " << k;
      }
    }
  }
}

TEST(Adversary, PartitionPreservesSafetyAndHealsIntoLiveness) {
  SimConfig config = attack_config();
  // 2|2 split from 4s to 8s: neither side has a quorum for new rounds, so
  // commits stall; after the heal the backlog must drain.
  config.adversary =
      std::make_shared<PartitionAdversary>(2, seconds(4), seconds(8));

  const SimResult result = run_simulation(config);

  expect_prefix_consistent(result, "partition");
  EXPECT_EQ(result.equivocation_cells, 0u);
  // Despite a 4-second total outage in a 14-second measurement window, the
  // post-heal protocol must recover a substantial share of the offered load.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.4) << result.to_string();
  // Liveness after heal: rounds kept advancing well past the partition.
  EXPECT_GT(result.max_round, 40u);
}

TEST(Adversary, PartitionStallsCommitsWhileActive) {
  // Control experiment: with a partition covering the entire measurement
  // window, no quorum forms and (almost) nothing commits.
  SimConfig config = attack_config();
  config.duration = seconds(10);
  config.adversary =
      std::make_shared<PartitionAdversary>(2, seconds(1), seconds(60));

  const SimResult result = run_simulation(config);
  EXPECT_LT(result.committed_tps, config.load_tps * 0.2) << result.to_string();
}

TEST(Adversary, TargetedDelayGetsVictimSkippedNotTheProtocol) {
  SimConfig config = attack_config();
  // Victim: validator 3. Its blocks arrive ~6 rounds late, so its leader
  // slots cannot gather votes in time and must be (directly) skipped.
  config.adversary = std::make_shared<TargetedDelayAdversary>(
      std::set<ValidatorId>{3}, millis(900));

  const SimResult result = run_simulation(config);

  expect_prefix_consistent(result, "targeted delay");
  EXPECT_EQ(result.equivocation_cells, 0u);
  // The other three validators carry the protocol.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5) << result.to_string();
  // The victim's slots show up as skips at the deciding validators.
  EXPECT_GT(result.commit_stats.skipped_slots(), 0u) << result.to_string();
}

TEST(Adversary, BurstAsynchronyDegradesLatencyNotAgreement) {
  SimConfig fair = attack_config();
  SimConfig burst = attack_config();
  // 1s of up-to-500ms extra delay on every message, every 3 seconds.
  burst.adversary = std::make_shared<BurstDelayAdversary>(
      seconds(3), seconds(1), millis(500));

  const SimResult fair_result = run_simulation(fair);
  const SimResult burst_result = run_simulation(burst);

  expect_prefix_consistent(burst_result, "burst");
  EXPECT_EQ(burst_result.equivocation_cells, 0u);
  // The attack costs latency...
  EXPECT_GT(burst_result.avg_latency_s, fair_result.avg_latency_s);
  // ...but not liveness.
  EXPECT_GT(burst_result.committed_tps, fair.load_tps * 0.5)
      << burst_result.to_string();
}

TEST(Adversary, RunsAreDeterministicUnderAttack) {
  SimConfig config = attack_config();
  config.adversary = std::make_shared<BurstDelayAdversary>(
      seconds(2), millis(700), millis(300));

  const SimResult a = run_simulation(config);
  const SimResult b = run_simulation(config);
  EXPECT_EQ(a.committed_tps, b.committed_tps);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.sequences, b.sequences);
}

TEST(Adversary, EmptyTargetSetIsANoop) {
  SimConfig fair = attack_config();
  SimConfig noop = attack_config();
  noop.adversary = std::make_shared<TargetedDelayAdversary>(
      std::set<ValidatorId>{}, millis(900));

  const SimResult a = run_simulation(fair);
  const SimResult b = run_simulation(noop);
  // A no-delay adversary must not perturb the schedule at all (it draws no
  // randomness and adds zero delay).
  EXPECT_EQ(a.committed_tps, b.committed_tps);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.sequences, b.sequences);
}

TEST(Adversary, AllProtocolsSurviveBurstAttack) {
  for (const Protocol protocol :
       {Protocol::kMahiMahi5, Protocol::kMahiMahi4, Protocol::kCordialMiners}) {
    SimConfig config = attack_config(protocol);
    config.duration = seconds(12);
    config.adversary = std::make_shared<BurstDelayAdversary>(
        seconds(3), seconds(1), millis(400));
    const SimResult result = run_simulation(config);
    expect_prefix_consistent(result, to_string(protocol));
    EXPECT_GT(result.committed_tps, config.load_tps * 0.3)
        << to_string(protocol) << ": " << result.to_string();
  }
}

TEST(Adversary, PartitionPlusCrashStaysWithinFaultBudget) {
  // A crash (f=1 of the n=4 budget) concurrent with a partition window.
  // Safety must hold throughout; liveness returns once the partition heals
  // (the three live validators regain a quorum).
  SimConfig config = attack_config();
  config.duration = seconds(18);
  config.restarts.push_back({.id = 3, .crash_at = seconds(3), .restart_at = 0});
  config.adversary =
      std::make_shared<PartitionAdversary>(2, seconds(5), seconds(9));

  const SimResult result = run_simulation(config);
  expect_prefix_consistent(result, "partition+crash");
  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.25) << result.to_string();
}

}  // namespace
}  // namespace mahimahi::sim
