// Tests for the replicated key-value application layer: state machine
// determinism, command codec, exactly-once execution across client
// resubmission, Byzantine-payload tolerance, and end-to-end replica
// convergence over a live validator cluster.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "app/replicated_kv.h"
#include "sim/dag_builder.h"
#include "validator/validator.h"

namespace mahimahi::app {
namespace {

// --------------------------------------------------------------------------
// KvStore
// --------------------------------------------------------------------------

TEST(KvStore, PutGetDelete) {
  KvStore store;
  EXPECT_TRUE(store.apply(KvCommand::put("a", "1")));
  EXPECT_TRUE(store.apply(KvCommand::put("b", "2")));
  EXPECT_EQ(store.get("a"), "1");
  EXPECT_EQ(store.get("b"), "2");
  EXPECT_EQ(store.size(), 2u);

  EXPECT_TRUE(store.apply(KvCommand::del("a")));
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, OverwriteBumpsVersion) {
  KvStore store;
  store.apply(KvCommand::put("k", "v1"));
  const auto v1 = store.version();
  store.apply(KvCommand::put("k", "v2"));
  EXPECT_EQ(store.get("k"), "v2");
  EXPECT_EQ(store.version(), v1 + 1);
}

TEST(KvStore, NoopAndMissingDeleteDoNotChangeState) {
  KvStore store;
  store.apply(KvCommand::put("k", "v"));
  const auto digest = store.state_digest();
  EXPECT_FALSE(store.apply(KvCommand{}));                 // noop
  EXPECT_FALSE(store.apply(KvCommand::del("missing")));   // delete of absent key
  EXPECT_EQ(store.state_digest(), digest);
}

TEST(KvStore, StateDigestIsContentDeterministic) {
  KvStore a, b;
  a.apply(KvCommand::put("x", "1"));
  a.apply(KvCommand::put("y", "2"));
  b.apply(KvCommand::put("x", "1"));
  b.apply(KvCommand::put("y", "2"));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(KvStore, StateDigestReflectsHistoryLength) {
  // Same final contents, different number of applied commands -> different
  // digest (version is part of the state), which is what lets replicas
  // detect divergence in executed-command counts, not just contents.
  KvStore a, b;
  a.apply(KvCommand::put("x", "1"));
  b.apply(KvCommand::put("x", "0"));
  b.apply(KvCommand::put("x", "1"));
  EXPECT_EQ(a.get("x"), b.get("x"));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

// --------------------------------------------------------------------------
// Command codec
// --------------------------------------------------------------------------

TEST(KvCommandCodec, RoundTrip) {
  const std::vector<KvCommand> commands = {
      KvCommand::put("alpha", "1"), KvCommand::del("beta"), KvCommand{},
      KvCommand::put("", ""),  // empty key/value are legal
  };
  const Bytes payload = encode_kv_payload(commands);
  const auto decoded = decode_kv_payload({payload.data(), payload.size()});
  EXPECT_EQ(decoded, commands);
}

TEST(KvCommandCodec, NonKvPayloadDecodesEmpty) {
  const Bytes opaque = to_bytes("arbitrary benchmark filler bytes");
  EXPECT_TRUE(decode_kv_payload({opaque.data(), opaque.size()}).empty());
  EXPECT_TRUE(decode_kv_payload({}).empty());
}

TEST(KvCommandCodec, CorruptKvPayloadThrows) {
  Bytes payload = encode_kv_payload({KvCommand::put("k", "v")});
  payload.resize(payload.size() - 1);  // truncate inside the command
  EXPECT_THROW(decode_kv_payload({payload.data(), payload.size()}), serde::SerdeError);

  Bytes bad_op = encode_kv_payload({KvCommand::put("k", "v")});
  bad_op[5] = 0x7f;  // first command's op byte (magic=4B, varint count=1B)
  EXPECT_THROW(decode_kv_payload({bad_op.data(), bad_op.size()}), serde::SerdeError);
}

TEST(KvCommandCodec, TrailingGarbageRejected) {
  Bytes payload = encode_kv_payload({KvCommand::put("k", "v")});
  payload.push_back(0);
  EXPECT_THROW(decode_kv_payload({payload.data(), payload.size()}), serde::SerdeError);
}

// --------------------------------------------------------------------------
// ReplicatedKv over committed sub-DAGs
// --------------------------------------------------------------------------

TxBatch kv_batch(std::uint64_t id, const std::vector<KvCommand>& commands) {
  TxBatch batch;
  batch.id = id;
  batch.count = static_cast<std::uint32_t>(commands.size());
  batch.payload = encode_kv_payload(commands);
  return batch;
}

CommittedSubDag subdag_of(const std::vector<BlockPtr>& blocks) {
  CommittedSubDag subdag;
  subdag.slot = SlotId{blocks.back()->round(), 0};
  subdag.leader = blocks.back();
  subdag.blocks = blocks;
  return subdag;
}

TEST(ReplicatedKv, AppliesCommandsInSubDagOrder) {
  DagBuilder builder(4);
  const auto genesis = builder.dag().blocks_at(0);
  std::vector<BlockRef> genesis_refs;
  for (const auto& g : genesis) genesis_refs.push_back(g->ref());

  const auto b1 = builder.add_block(
      0, 1, genesis_refs,
      {kv_batch(1, {KvCommand::put("k", "first"), KvCommand::put("other", "x")})});
  const auto b2 = builder.add_block(1, 1, genesis_refs,
                                    {kv_batch(2, {KvCommand::put("k", "second")})});

  ReplicatedKv replica;
  EXPECT_EQ(replica.apply_subdag(subdag_of({b1, b2})), 3u);
  // b2's put executes after b1's: last writer in sub-DAG order wins.
  EXPECT_EQ(replica.store().get("k"), "second");
  EXPECT_EQ(replica.store().get("other"), "x");
}

TEST(ReplicatedKv, DeduplicatesResubmittedBatch) {
  DagBuilder builder(4);
  const auto genesis = builder.dag().blocks_at(0);
  std::vector<BlockRef> genesis_refs;
  for (const auto& g : genesis) genesis_refs.push_back(g->ref());

  // The client resubmitted the same batch to two validators (§2.3); both
  // copies committed in different blocks.
  const auto batch = kv_batch(7, {KvCommand::put("ctr", "1")});
  const auto b1 = builder.add_block(0, 1, genesis_refs, {batch});
  const auto b2 = builder.add_block(1, 1, genesis_refs, {batch});

  ReplicatedKv replica;
  EXPECT_EQ(replica.apply_subdag(subdag_of({b1})), 1u);
  EXPECT_EQ(replica.apply_subdag(subdag_of({b2})), 0u);
  EXPECT_EQ(replica.batches_deduplicated(), 1u);
  EXPECT_EQ(replica.store().version(), 1u);
}

TEST(ReplicatedKv, DistinctBatchesWithSameIdBothExecute) {
  // Batch ids are only unique per client; content identity must distinguish
  // two different commands that happen to share an id.
  DagBuilder builder(4);
  const auto genesis = builder.dag().blocks_at(0);
  std::vector<BlockRef> genesis_refs;
  for (const auto& g : genesis) genesis_refs.push_back(g->ref());

  const auto b1 =
      builder.add_block(0, 1, genesis_refs, {kv_batch(1, {KvCommand::put("a", "1")})});
  const auto b2 =
      builder.add_block(1, 1, genesis_refs, {kv_batch(1, {KvCommand::put("b", "2")})});

  ReplicatedKv replica;
  replica.apply_subdag(subdag_of({b1, b2}));
  EXPECT_EQ(replica.store().get("a"), "1");
  EXPECT_EQ(replica.store().get("b"), "2");
  EXPECT_EQ(replica.batches_deduplicated(), 0u);
}

TEST(ReplicatedKv, MalformedPayloadDoesNotPoisonReplica) {
  DagBuilder builder(4);
  const auto genesis = builder.dag().blocks_at(0);
  std::vector<BlockRef> genesis_refs;
  for (const auto& g : genesis) genesis_refs.push_back(g->ref());

  TxBatch corrupt = kv_batch(9, {KvCommand::put("x", "y")});
  corrupt.payload.resize(corrupt.payload.size() - 1);
  const auto good = kv_batch(10, {KvCommand::put("ok", "yes")});
  const auto block = builder.add_block(0, 1, genesis_refs, {corrupt, good});

  ReplicatedKv replica;
  EXPECT_EQ(replica.apply_subdag(subdag_of({block})), 1u);
  EXPECT_EQ(replica.malformed_batches(), 1u);
  EXPECT_EQ(replica.store().get("ok"), "yes");
  EXPECT_FALSE(replica.store().get("x").has_value());
}

TEST(ReplicatedKv, OpaqueBenchmarkBatchesAreIgnored) {
  DagBuilder builder(4);
  const auto genesis = builder.dag().blocks_at(0);
  std::vector<BlockRef> genesis_refs;
  for (const auto& g : genesis) genesis_refs.push_back(g->ref());

  TxBatch filler;  // empty payload: pure bandwidth accounting
  filler.id = 1;
  filler.count = 100;
  const auto block = builder.add_block(0, 1, genesis_refs, {filler});

  ReplicatedKv replica;
  EXPECT_EQ(replica.apply_subdag(subdag_of({block})), 0u);
  EXPECT_EQ(replica.store().size(), 0u);
  EXPECT_EQ(replica.malformed_batches(), 0u);
}

// --------------------------------------------------------------------------
// End-to-end: replicas over a live cluster converge
// --------------------------------------------------------------------------

class KvClusterTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  // wave length from the test parameter; 4 validators, 1 leader per round.
  static constexpr std::uint32_t kN = 4;
};

TEST_P(KvClusterTest, ReplicasConvergeToIdenticalState) {
  const auto setup = Committee::make_test(kN);
  std::vector<std::unique_ptr<ValidatorCore>> nodes;
  for (ValidatorId v = 0; v < kN; ++v) {
    ValidatorConfig config;
    config.id = v;
    config.committer = CommitterOptions{.wave_length = GetParam(), .leaders_per_round = 2};
    nodes.push_back(std::make_unique<ValidatorCore>(setup.committee,
                                                    setup.keypairs[v].private_key,
                                                    config));
  }

  std::vector<ReplicatedKv> replicas(kN);
  std::vector<std::vector<Digest>> digest_history(kN);

  auto absorb = [&](ValidatorId v, Actions actions,
                    std::vector<std::pair<ValidatorId, BlockPtr>>& wire) {
    for (const auto& subdag : actions.committed) {
      replicas[v].apply_subdag(subdag);
      digest_history[v].push_back(replicas[v].state_digest());
    }
    for (const auto& block : actions.broadcast) wire.emplace_back(v, block);
  };

  // Drive 40 ticks; inject a KV command stream at validator (tick % n).
  std::vector<std::pair<ValidatorId, BlockPtr>> wire;
  std::uint64_t next_id = 1;
  for (int tick = 0; tick < 40; ++tick) {
    const TimeMicros now = millis(tick * 10);
    const ValidatorId origin = tick % kN;
    const std::string key = "key-" + std::to_string(tick % 5);
    absorb(origin,
           nodes[origin]->on_transactions(
               {kv_batch(next_id++, {KvCommand::put(key, std::to_string(tick))})}, now),
           wire);
    for (ValidatorId v = 0; v < kN; ++v) absorb(v, nodes[v]->on_tick(now), wire);
    // Deliver everything broadcast this tick to every peer.
    std::vector<std::pair<ValidatorId, BlockPtr>> current;
    std::swap(current, wire);
    // With min_round_delay = 0 and instant delivery each proposal cascades
    // into the next round indefinitely; cap the delivered round so the
    // drain loop terminates (plenty of rounds for several waves to commit).
    constexpr Round kMaxRound = 30;
    while (!current.empty()) {
      std::vector<std::pair<ValidatorId, BlockPtr>> next;
      for (const auto& [from, block] : current) {
        if (block->round() > kMaxRound) continue;
        for (ValidatorId to = 0; to < kN; ++to) {
          if (to == from) continue;
          absorb(to, nodes[to]->on_block(block, from, now), next);
        }
      }
      current = std::move(next);
    }
  }

  // Every replica committed something, and the per-commit digest histories
  // agree on their common prefix — identical states after identical
  // committed prefixes (Total Order -> SMR).
  std::size_t min_commits = digest_history[0].size();
  for (ValidatorId v = 0; v < kN; ++v) {
    ASSERT_GT(digest_history[v].size(), 0u) << "validator " << v << " never committed";
    min_commits = std::min(min_commits, digest_history[v].size());
  }
  for (std::size_t i = 0; i < min_commits; ++i) {
    for (ValidatorId v = 1; v < kN; ++v) {
      ASSERT_EQ(digest_history[v][i], digest_history[0][i])
          << "divergence at commit " << i << " on validator " << v;
    }
  }
  // And state is non-trivial.
  EXPECT_GT(replicas[0].commands_applied(), 0u);
}

INSTANTIATE_TEST_SUITE_P(WaveLengths, KvClusterTest, ::testing::Values(4u, 5u));

}  // namespace
}  // namespace mahimahi::app
