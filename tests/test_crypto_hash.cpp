// Hash-function tests: published test vectors (FIPS 180-4, RFC 7693,
// RFC 4231), incremental-API equivalence, and the self-verifying SHA-2
// constant schedules (fracroot).
#include <gtest/gtest.h>

#include <string>

#include "common/hex.h"
#include "crypto/blake2b.h"
#include "crypto/fracroot.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace mahimahi::crypto {
namespace {

std::string hex512(const std::array<std::uint8_t, 64>& digest) {
  return to_hex({digest.data(), digest.size()});
}

// --- SHA-256 ---------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hash({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash(as_bytes_view("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, QuickBrownFox) {
  EXPECT_EQ(Sha256::hash(as_bytes_view("The quick brown fox jumps over the lazy dog")).hex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, MillionAs) {
  // FIPS 180-4 long-message vector.
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes_view(chunk));
  EXPECT_EQ(h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "incremental hashing must match one-shot hashing";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(as_bytes_view(msg.substr(0, split)));
    h.update(as_bytes_view(msg.substr(split)));
    EXPECT_EQ(h.finish(), Sha256::hash(as_bytes_view(msg))) << "split " << split;
  }
}

TEST(Sha256, BlockBoundaryLengths) {
  // Exercise the padding logic at every length near the 64-byte boundary.
  for (std::size_t len = 50; len <= 130; ++len) {
    const std::string msg(len, 'q');
    Sha256 one;
    one.update(as_bytes_view(msg));
    Sha256 two;
    two.update(as_bytes_view(msg.substr(0, len / 2)));
    two.update(as_bytes_view(msg.substr(len / 2)));
    EXPECT_EQ(one.finish(), two.finish()) << "len " << len;
  }
}

TEST(Sha256, RoundConstantsMatchDefinition) {
  // K_i is defined as the first 32 fractional bits of cbrt(prime_i); the
  // table and the exact-integer generator must agree.
  const auto primes = first_primes<64>();
  const auto& table = sha256_round_constants();
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(table[i], frac_cbrt32(primes[i])) << "constant " << i;
  }
}

// --- SHA-512 ---------------------------------------------------------------

TEST(Sha512, EmptyString) {
  EXPECT_EQ(hex512(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(hex512(Sha512::hash(as_bytes_view("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, QuickBrownFox) {
  EXPECT_EQ(hex512(Sha512::hash(as_bytes_view("The quick brown fox jumps over the lazy dog"))),
            "07e547d9586f6a73f73fbac0435ed76951218fb7d0c8d788a309d785436bbb64"
            "2e93a252a954f23912547d1e8a3b5ed6e1bfd7097821233fa0538f3db854fee6");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  const std::string msg(517, 'z');  // spans several 128-byte blocks
  Sha512 h;
  for (std::size_t i = 0; i < msg.size(); i += 100) {
    h.update(as_bytes_view(msg.substr(i, 100)));
  }
  EXPECT_EQ(h.finish(), Sha512::hash(as_bytes_view(msg)));
}

TEST(Sha512, BlockBoundaryLengths) {
  for (std::size_t len = 100; len <= 260; len += 3) {
    const std::string msg(len, 'w');
    Sha512 split_hash;
    split_hash.update(as_bytes_view(msg.substr(0, len / 3)));
    split_hash.update(as_bytes_view(msg.substr(len / 3)));
    EXPECT_EQ(split_hash.finish(), Sha512::hash(as_bytes_view(msg))) << "len " << len;
  }
}

TEST(Sha512, FirstRoundConstantsAreTheFamousOnes) {
  // Spot-check the generated schedule against the widely published first
  // four constants.
  const auto& k = sha512_round_constants();
  EXPECT_EQ(k[0], 0x428a2f98d728ae22ULL);
  EXPECT_EQ(k[1], 0x7137449123ef65cdULL);
  EXPECT_EQ(k[2], 0xb5c0fbcfec4d3b2fULL);
  EXPECT_EQ(k[3], 0xe9b5dba58189dbbcULL);
  EXPECT_EQ(k[79], 0x6c44198c4a475817ULL);
}

TEST(FracRoot, SqrtConstantsMatchSha512InitVector) {
  // H0..H7 of SHA-512 are the fractional sqrt bits of the first 8 primes.
  const auto primes = first_primes<8>();
  constexpr std::uint64_t kExpected[8] = {
      0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
      0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
      0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(frac_sqrt64(primes[i]), kExpected[i]) << "prime " << primes[i];
  }
}

TEST(FracRoot, PerfectSquaresAndCubesHaveZeroFraction) {
  EXPECT_EQ(frac_sqrt64(4), 0u);
  EXPECT_EQ(frac_sqrt64(9), 0u);
  EXPECT_EQ(frac_cbrt64(8), 0u);
  EXPECT_EQ(frac_cbrt64(27), 0u);
}

// --- BLAKE2b ---------------------------------------------------------------

TEST(Blake2b, Rfc7693AbcVector) {
  EXPECT_EQ(hex512(Blake2b::hash512(as_bytes_view("abc"))),
            "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d1"
            "7d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923");
}

TEST(Blake2b, EmptyString512) {
  EXPECT_EQ(hex512(Blake2b::hash512({})),
            "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419"
            "d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce");
}

TEST(Blake2b, EmptyString256) {
  EXPECT_EQ(Blake2b::hash256({}).hex(),
            "0e5751c026e543b2e8ab2eb06099daa1d1e5df47778f7787faab45cdf12fe3a8");
}

TEST(Blake2b, Abc256) {
  EXPECT_EQ(Blake2b::hash256(as_bytes_view("abc")).hex(),
            "bddd813c634239723171ef3fee98579b94964e3bb1cb3e427262c8c068d52319");
}

TEST(Blake2b, MultiBlockInput) {
  const std::string msg(300, 'x');  // crosses two 128-byte block boundaries
  EXPECT_EQ(Blake2b::hash256(as_bytes_view(msg)).hex(),
            "5aa7fbbf37986bb2a5d547c0d3c4d4326a24d786e7d57bf93fc784176e38b33d");
}

TEST(Blake2b, KeyedMode) {
  EXPECT_EQ(Blake2b::mac256(as_bytes_view("secret-key"), as_bytes_view("data to mac")).hex(),
            "119b2a392331731addd55bcaac5f5821a0e19e748b2dfbf808d009ce3a0685e9");
  EXPECT_EQ(Blake2b::mac256(as_bytes_view("k"), {}).hex(),
            "490b6c8300eb23464bd2f9ca37c036be5091da14ddbeafab424c4c0a1f9eaac5");
}

TEST(Blake2b, VariableDigestLengths) {
  Blake2b h1(1);
  h1.update(as_bytes_view("abc"));
  std::uint8_t out1[1];
  h1.finish(out1);
  EXPECT_EQ(to_hex({out1, 1}), "6b");

  Blake2b h20(20);
  h20.update(as_bytes_view("abc"));
  std::uint8_t out20[20];
  h20.finish(out20);
  EXPECT_EQ(to_hex({out20, 20}), "384264f676f39536840523f284921cdc68b6846b");
}

TEST(Blake2b, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'm');
  for (const std::size_t chunk : {1ul, 7ul, 127ul, 128ul, 129ul, 500ul}) {
    Blake2b h(32);
    for (std::size_t i = 0; i < msg.size(); i += chunk) {
      h.update(as_bytes_view(msg.substr(i, chunk)));
    }
    Digest d;
    h.finish(d.bytes.data());
    EXPECT_EQ(d, Blake2b::hash256(as_bytes_view(msg))) << "chunk " << chunk;
  }
}

TEST(Blake2b, ExactBlockMultiples) {
  // 128- and 256-byte inputs exercise the "full buffer is not final" rule.
  const std::string one_block(128, 'b');
  const std::string two_blocks(256, 'b');
  EXPECT_NE(Blake2b::hash256(as_bytes_view(one_block)),
            Blake2b::hash256(as_bytes_view(two_blocks)));
  Blake2b split;
  split.update(as_bytes_view(one_block));
  split.update(as_bytes_view(one_block));
  Digest d;
  split.finish(d.bytes.data());
  EXPECT_EQ(d, Blake2b::hash256(as_bytes_view(two_blocks)));
}

// --- HMAC-SHA-256 (RFC 4231) ------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_sha256({key.data(), key.size()}, as_bytes_view("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256(as_bytes_view("Jefe"), as_bytes_view("what do ya want for nothing?")).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  const Bytes key(100, 'k');
  EXPECT_EQ(hmac_sha256({key.data(), key.size()}, as_bytes_view("big key case")).hex(),
            "72cf7cebfc5e37ba77d76142118a0edac2ce4e2afd78372b1f45744f641be5a8");
}

TEST(HmacSha256, KeySensitivity) {
  const auto m1 = hmac_sha256(as_bytes_view("key-a"), as_bytes_view("msg"));
  const auto m2 = hmac_sha256(as_bytes_view("key-b"), as_bytes_view("msg"));
  EXPECT_NE(m1, m2);
}

}  // namespace
}  // namespace mahimahi::crypto
