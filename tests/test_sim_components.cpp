// Unit tests for simulator components: event queue, latency models,
// metrics, and the Poisson sampler.
#include <gtest/gtest.h>

#include "client/metrics.h"
#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/latency.h"

namespace mahimahi {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30, [&] { order.push_back(3); });
  queue.schedule(10, [&] { order.push_back(1); });
  queue.schedule(20, [&] { order.push_back(2); });
  queue.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 100);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  queue.run_until(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) queue.schedule_after(10, chain);
  };
  queue.schedule(0, chain);
  queue.run_until(100);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(queue.now(), 100);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(10, [&] { ++fired; });
  queue.schedule(50, [&] { ++fired; });
  queue.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.size(), 1u);
  queue.run_until(60);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NeverSchedulesIntoThePast) {
  EventQueue queue;
  TimeMicros observed = -1;
  queue.schedule(100, [&] {
    // Attempt to schedule before `now`; must clamp to now.
    queue.schedule(5, [&] { observed = queue.now(); });
  });
  queue.run_until(200);
  EXPECT_EQ(observed, 100);
}

TEST(UniformLatency, JitterFreeIsExact) {
  UniformLatency model(millis(40));
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.sample(0, 1, rng), millis(40));
}

TEST(UniformLatency, JitterStaysReasonable) {
  UniformLatency model(millis(40), 0.1);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const TimeMicros sample = model.sample(0, 1, rng);
    EXPECT_GE(sample, millis(8));   // clamped at base/5
    EXPECT_LT(sample, millis(80));  // ~10 sigmas
  }
}

TEST(GeoLatency, MatrixIsSymmetricAndLocalIsFast) {
  GeoLatency model(0.0);
  for (ValidatorId a = 0; a < 10; ++a) {
    for (ValidatorId b = 0; b < 10; ++b) {
      EXPECT_EQ(model.base(a, b), model.base(b, a));
    }
  }
  // Same region (v0 and v5 are both Ohio with n=10): 1ms.
  EXPECT_EQ(model.base(0, 5), millis(1));
  // Cape Town (region 2) is the farthest from Hong Kong (region 3).
  EXPECT_GT(model.base(2, 3), millis(100));
}

TEST(GeoLatency, RegionNamesExist) {
  for (std::size_t region = 0; region < GeoLatency::kRegions; ++region) {
    EXPECT_NE(std::string(GeoLatency::region_name(region)), "?");
  }
}

TEST(LatencyRecorder, WeightedMeanAndPercentiles) {
  LatencyRecorder recorder;
  recorder.record(millis(100), 1);
  recorder.record(millis(200), 1);
  recorder.record(millis(300), 2);
  EXPECT_EQ(recorder.count(), 4u);
  EXPECT_DOUBLE_EQ(recorder.mean_seconds(), (0.1 + 0.2 + 0.3 * 2) / 4);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(50), 0.2);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(100), 0.3);
  EXPECT_DOUBLE_EQ(recorder.percentile_seconds(1), 0.1);
}

TEST(LatencyRecorder, ZeroWeightIgnored) {
  LatencyRecorder recorder;
  recorder.record(millis(100), 0);
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.mean_seconds(), 0.0);
}

TEST(Poisson, MeanMatches) {
  Rng rng(5);
  for (const double mean : {0.5, 5.0, 40.0, 500.0}) {
    double total = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) total += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(total / kSamples, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(Poisson, ZeroAndNegativeMeansYieldZero) {
  Rng rng(6);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-3.0), 0u);
}

TEST(Poisson, VarianceMatches) {
  Rng rng(7);
  const double mean = 30.0;
  constexpr int kSamples = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double sample = static_cast<double>(rng.poisson(mean));
    sum += sample;
    sum_sq += sample * sample;
  }
  const double measured_mean = sum / kSamples;
  const double variance = sum_sq / kSamples - measured_mean * measured_mean;
  EXPECT_NEAR(variance, mean, mean * 0.1);  // Poisson: variance == mean
}

}  // namespace
}  // namespace mahimahi
