// Unit tests for the sharded mempool subsystem (mempool/mempool.h):
// shard-key stability, admission control (duplicates, client quotas, shard
// and pool capacity), round-robin drain fairness, drain determinism, the
// oversized-first-batch carry-over regression, and concurrent submission.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "mempool/mempool.h"

namespace mahimahi {
namespace {

// A batch with an exact wire size: empty payload, count transactions of one
// byte each, so wire_bytes() == bytes.
TxBatch make_batch(std::uint64_t client, std::uint64_t seq, std::uint32_t bytes = 512) {
  TxBatch batch;
  batch.id = (client << ShardedMempool::kClientKeyShift) | seq;
  batch.count = bytes;
  batch.tx_bytes = 1;
  return batch;
}

// First `n` client keys whose shards are pairwise distinct (for fairness
// tests that need isolated stripes).
std::vector<std::uint64_t> distinct_shard_clients(const ShardedMempool& pool,
                                                  std::size_t n) {
  std::vector<std::uint64_t> clients;
  std::vector<char> used(pool.shard_count(), 0);
  for (std::uint64_t key = 0; clients.size() < n && key < 10'000; ++key) {
    const std::size_t shard = pool.shard_for(key);
    if (used[shard]) continue;
    used[shard] = 1;
    clients.push_back(key);
  }
  return clients;
}

TEST(ShardedMempoolTest, ShardKeyStability) {
  MempoolConfig config;
  config.shards = 8;
  ShardedMempool pool(config);
  EXPECT_EQ(pool.shard_count(), 8u);

  // The client key is the id's upper 32 bits; the sequence bits never move a
  // batch to another shard.
  const TxBatch a = make_batch(7, 0);
  const TxBatch b = make_batch(7, 999);
  EXPECT_EQ(ShardedMempool::client_key(a), 7u);
  EXPECT_EQ(ShardedMempool::client_key(b), 7u);

  // shard_for is a pure function: repeated calls agree.
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(pool.shard_for(key), pool.shard_for(key));
    EXPECT_LT(pool.shard_for(key), 8u);
  }

  // Consecutive client keys spread over several shards (no committee-stride
  // aliasing onto a single stripe).
  std::vector<char> hit(8, 0);
  for (std::uint64_t key = 0; key < 64; ++key) hit[pool.shard_for(key)] = 1;
  EXPECT_GE(std::count(hit.begin(), hit.end(), 1), 4);

  // Batches land in the shard their client maps to.
  ShardedMempool fresh(config);
  ASSERT_TRUE(admitted(fresh.submit(make_batch(7, 0))));
  EXPECT_EQ(fresh.shard_size(fresh.shard_for(7)), 1u);
}

TEST(ShardedMempoolTest, AccountingTracksSubmitAndDrain) {
  ShardedMempool pool;
  EXPECT_TRUE(pool.empty());
  ASSERT_TRUE(admitted(pool.submit(make_batch(1, 0, 100))));
  ASSERT_TRUE(admitted(pool.submit(make_batch(2, 0, 200))));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.bytes(), 300u);

  const auto drained = pool.drain(10, 1 << 20);
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.bytes(), 0u);
  EXPECT_EQ(pool.stats().accepted, 2u);
}

TEST(ShardedMempoolTest, DuplicateBatchRejected) {
  ShardedMempool pool;
  TxBatch batch = make_batch(3, 17);
  batch.submitted_at = 1000;
  ASSERT_EQ(pool.submit(batch), AdmitResult::kAccepted);

  // A client retry re-stamps the batch; it is still the same submission.
  TxBatch retry = batch;
  retry.submitted_at = 2000;
  EXPECT_EQ(pool.submit(retry), AdmitResult::kDuplicate);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().duplicate, 1u);

  // A different sequence number is a different batch.
  EXPECT_EQ(pool.submit(make_batch(3, 18)), AdmitResult::kAccepted);

  // Dedup covers resident batches only: once drained (proposed), the digest
  // leaves the set and a resubmission is admissible again.
  pool.drain(10, 1 << 20);
  EXPECT_EQ(pool.submit(batch), AdmitResult::kAccepted);
}

TEST(ShardedMempoolTest, ClientQuotaRejection) {
  MempoolConfig config;
  config.max_client_bytes = 1000;
  ShardedMempool pool(config);

  ASSERT_EQ(pool.submit(make_batch(5, 0, 600)), AdmitResult::kAccepted);
  EXPECT_EQ(pool.submit(make_batch(5, 1, 600)), AdmitResult::kClientQuota);
  // Another client is unaffected by 5's quota.
  EXPECT_EQ(pool.submit(make_batch(6, 0, 600)), AdmitResult::kAccepted);
  EXPECT_EQ(pool.stats().client_quota, 1u);

  // Draining frees the quota.
  pool.drain(10, 1 << 20);
  EXPECT_EQ(pool.submit(make_batch(5, 1, 600)), AdmitResult::kAccepted);
}

TEST(ShardedMempoolTest, ShardCapacityRejection) {
  MempoolConfig config;
  config.shards = 1;
  config.max_shard_batches = 3;
  ShardedMempool pool(config);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    ASSERT_EQ(pool.submit(make_batch(1, seq)), AdmitResult::kAccepted);
  }
  EXPECT_EQ(pool.submit(make_batch(1, 3)), AdmitResult::kShardFull);
  EXPECT_EQ(pool.stats().shard_full, 1u);
}

TEST(ShardedMempoolTest, GlobalByteCapRejection) {
  MempoolConfig config;
  config.max_pool_bytes = 1000;
  config.max_client_bytes = 1 << 20;
  ShardedMempool pool(config);
  ASSERT_EQ(pool.submit(make_batch(1, 0, 600)), AdmitResult::kAccepted);
  EXPECT_EQ(pool.submit(make_batch(2, 0, 600)), AdmitResult::kPoolFull);
  EXPECT_EQ(pool.stats().pool_full, 1u);
  EXPECT_EQ(pool.bytes(), 600u);  // the rejected reservation was rolled back

  pool.drain(10, 1 << 20);
  EXPECT_EQ(pool.submit(make_batch(2, 0, 600)), AdmitResult::kAccepted);
}

TEST(ShardedMempoolTest, RoundRobinDrainNoStarvation) {
  MempoolConfig config;
  config.shards = 4;
  ShardedMempool pool(config);
  const auto clients = distinct_shard_clients(pool, 2);
  ASSERT_EQ(clients.size(), 2u);
  const std::uint64_t heavy = clients[0];
  const std::uint64_t light = clients[1];

  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    ASSERT_TRUE(admitted(pool.submit(make_batch(heavy, seq))));
  }
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    ASSERT_TRUE(admitted(pool.submit(make_batch(light, seq))));
  }

  // A budget of 20 batches must serve BOTH clients evenly — the light one
  // gets all 10 of its batches through despite the heavy backlog.
  const auto drained = pool.drain(20, 1ull << 40);
  ASSERT_EQ(drained.size(), 20u);
  const auto from_light = std::count_if(
      drained.begin(), drained.end(),
      [&](const TxBatch& b) { return ShardedMempool::client_key(b) == light; });
  EXPECT_EQ(from_light, 10);
}

TEST(ShardedMempoolTest, DrainCursorPersistsAcrossDrains) {
  MempoolConfig config;
  config.shards = 4;
  ShardedMempool pool(config);
  const auto clients = distinct_shard_clients(pool, 2);
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    ASSERT_TRUE(admitted(pool.submit(make_batch(clients[0], seq))));
    ASSERT_TRUE(admitted(pool.submit(make_batch(clients[1], seq))));
  }
  // Single-batch drains alternate between the two occupied shards: the
  // cursor resumes after the last-served shard instead of re-scanning from
  // zero (which would starve the later shard).
  std::vector<std::uint64_t> served;
  for (int i = 0; i < 4; ++i) {
    const auto out = pool.drain(1, 1ull << 40);
    ASSERT_EQ(out.size(), 1u);
    served.push_back(ShardedMempool::client_key(out[0]));
  }
  EXPECT_NE(served[0], served[1]);
  EXPECT_EQ(served[0], served[2]);
  EXPECT_EQ(served[1], served[3]);
}

TEST(ShardedMempoolTest, PerClientFifoOrderSurvivesSharding) {
  MempoolConfig config;
  config.shards = 8;
  ShardedMempool pool(config);
  for (std::uint64_t seq = 0; seq < 20; ++seq) {
    for (std::uint64_t client = 0; client < 5; ++client) {
      ASSERT_TRUE(admitted(pool.submit(make_batch(client, seq))));
    }
  }
  std::map<std::uint64_t, std::uint64_t> next_seq;
  for (const auto& batch : pool.drain(1000, 1ull << 40)) {
    const std::uint64_t client = ShardedMempool::client_key(batch);
    const std::uint64_t seq = batch.id & 0xffffffffull;
    EXPECT_EQ(seq, next_seq[client]++) << "client " << client;
  }
  for (std::uint64_t client = 0; client < 5; ++client) {
    EXPECT_EQ(next_seq[client], 20u);
  }
}

TEST(ShardedMempoolTest, DrainDeterministicGivenShardState) {
  // Two pools fed identically drain identically, drain after drain — block
  // proposal must be a pure function of mempool state.
  MempoolConfig config;
  config.shards = 4;
  ShardedMempool a(config);
  ShardedMempool b(config);
  for (std::uint64_t client = 0; client < 7; ++client) {
    for (std::uint64_t seq = 0; seq < 11; ++seq) {
      ASSERT_TRUE(admitted(a.submit(make_batch(client, seq))));
      ASSERT_TRUE(admitted(b.submit(make_batch(client, seq))));
    }
  }
  while (!a.empty() || !b.empty()) {
    const auto out_a = a.drain(5, 4096);
    const auto out_b = b.drain(5, 4096);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].id, out_b[i].id);
    }
    ASSERT_FALSE(out_a.empty());
  }
}

// Regression for the FIFO mempool's documented carry-over: the first batch
// of a drain is taken even when it alone exceeds the byte budget — a batch
// larger than the block payload cap must remain proposable or its shard
// wedges forever.
TEST(ShardedMempoolTest, OversizedFirstBatchCarriesOver) {
  ShardedMempool pool;
  ASSERT_TRUE(admitted(pool.submit(make_batch(1, 0, 10'000))));
  ASSERT_TRUE(admitted(pool.submit(make_batch(1, 1, 100))));

  const auto drained = pool.drain(10, 1000);  // budget far below 10'000
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].wire_bytes(), 10'000u);
  // The follow-up batch respected the (exhausted) budget and stayed queued.
  EXPECT_EQ(pool.size(), 1u);
  const auto rest = pool.drain(10, 1000);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].wire_bytes(), 100u);
}

TEST(ShardedMempoolTest, ByteBudgetEndsDrain) {
  ShardedMempool pool;
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    ASSERT_TRUE(admitted(pool.submit(make_batch(1, seq, 400))));
  }
  // 1000 bytes fit two 400-byte batches; the third would overflow.
  const auto drained = pool.drain(10, 1000);
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(pool.size(), 8u);
}

TEST(ShardedMempoolTest, ConcurrentSubmitStress) {
  MempoolConfig config;
  config.shards = 8;
  ShardedMempool pool(config);

  constexpr std::uint64_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (std::uint64_t seq = 0; seq < kPerThread; ++seq) {
        ASSERT_TRUE(admitted(pool.submit(make_batch(t, seq))));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(pool.size(), kThreads * kPerThread);
  EXPECT_EQ(pool.stats().accepted, kThreads * kPerThread);
  EXPECT_EQ(pool.bytes(), kThreads * kPerThread * 512u);

  // Everything is drainable and per-client FIFO order survived the races.
  std::map<std::uint64_t, std::uint64_t> next_seq;
  std::size_t total = 0;
  while (true) {
    const auto out = pool.drain(64, 1ull << 40);
    if (out.empty()) break;
    total += out.size();
    for (const auto& batch : out) {
      const std::uint64_t client = ShardedMempool::client_key(batch);
      EXPECT_EQ(batch.id & 0xffffffffull, next_seq[client]++);
    }
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_TRUE(pool.empty());
}

TEST(ShardedMempoolTest, ConcurrentSubmitWithConcurrentDrain) {
  MempoolConfig config;
  config.shards = 4;
  ShardedMempool pool(config);

  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 400;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drained{0};
  std::thread drainer([&] {
    while (!done.load()) {
      drained += pool.drain(16, 1ull << 40).size();
    }
    drained += pool.drain(1ull << 20, 1ull << 40).size();
  });
  std::vector<std::thread> submitters;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, t] {
      for (std::uint64_t seq = 0; seq < kPerThread; ++seq) {
        ASSERT_TRUE(admitted(pool.submit(make_batch(t, seq))));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  done.store(true);
  drainer.join();

  EXPECT_EQ(drained.load(), kThreads * kPerThread);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.bytes(), 0u);
}

}  // namespace
}  // namespace mahimahi
