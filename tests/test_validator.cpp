// Unit tests for the sans-IO validator core: proposal rule, synchronizer
// integration, fetch retry, mempool draining, equivocation mode, recovery.
#include <gtest/gtest.h>

#include <map>

#include "validator/validator.h"

namespace mahimahi {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() : setup_(Committee::make_test(4)) {}

  ValidatorConfig config_for(ValidatorId id) {
    ValidatorConfig config;
    config.id = id;
    config.committer = mahi_mahi_5(1);
    return config;
  }

  std::unique_ptr<ValidatorCore> make_validator(ValidatorId id) {
    return std::make_unique<ValidatorCore>(setup_.committee,
                                           setup_.keypairs[id].private_key,
                                           config_for(id));
  }

  // Runs a fully-connected in-memory cluster of 4 validators, delivering
  // every broadcast to every peer. With min_round_delay = 0 and instant
  // delivery the cluster free-runs (each quorum immediately triggers the
  // next proposal), so delivery is capped at `max_round`: blocks beyond the
  // cap are dropped, which starves later quorums and ends the cascade.
  struct Cluster {
    std::vector<std::unique_ptr<ValidatorCore>> nodes;
    std::vector<CommittedSubDag> committed[4];
    TimeMicros now = 0;
    Round max_round = 20;

    void pump(std::vector<std::pair<ValidatorId, Actions>> initial) {
      std::vector<std::pair<ValidatorId, Actions>> queue = std::move(initial);
      while (!queue.empty()) {
        std::vector<std::pair<ValidatorId, Actions>> next;
        for (auto& [from, actions] : queue) {
          for (auto& sub : actions.committed) committed[from].push_back(sub);
          for (const auto& block : actions.broadcast) {
            if (block->round() > max_round) continue;
            for (ValidatorId to = 0; to < 4; ++to) {
              if (to == from) continue;
              Actions reaction = nodes[to]->on_block(block, from, now);
              if (!reaction.empty()) next.emplace_back(to, std::move(reaction));
            }
          }
        }
        queue = std::move(next);
      }
    }
  };

  Cluster make_cluster() {
    Cluster cluster;
    for (ValidatorId v = 0; v < 4; ++v) cluster.nodes.push_back(make_validator(v));
    return cluster;
  }

  Committee::TestSetup setup_;
};

TEST_F(ValidatorTest, ProposesRound1OnFirstTick) {
  auto validator = make_validator(0);
  const Actions actions = validator->on_tick(0);
  ASSERT_EQ(actions.broadcast.size(), 1u);
  EXPECT_EQ(actions.broadcast[0]->round(), 1u);
  EXPECT_EQ(actions.broadcast[0]->author(), 0u);
  // The proposal references all four genesis blocks.
  EXPECT_EQ(actions.broadcast[0]->parents().size(), 4u);
  EXPECT_EQ(validator->last_proposed_round(), 1u);
}

TEST_F(ValidatorTest, DoesNotReProposeSameRound) {
  auto validator = make_validator(0);
  validator->on_tick(0);
  const Actions again = validator->on_tick(10);
  EXPECT_TRUE(again.broadcast.empty());
}

TEST_F(ValidatorTest, AdvancesRoundOnQuorum) {
  auto cluster = make_cluster();
  // Everyone proposes round 1; deliveries cascade proposals for subsequent
  // rounds as quorums form.
  std::vector<std::pair<ValidatorId, Actions>> initial;
  for (ValidatorId v = 0; v < 4; ++v) {
    initial.emplace_back(v, cluster.nodes[v]->on_tick(0));
  }
  cluster.pump(std::move(initial));
  // With instant delivery the cluster free-runs: every validator reaches a
  // round well beyond 1 and all DAGs stay within one round of each other.
  for (ValidatorId v = 0; v < 4; ++v) {
    EXPECT_GT(cluster.nodes[v]->last_proposed_round(), 1u);
  }
}

TEST_F(ValidatorTest, RejectsInvalidBlocks) {
  auto validator = make_validator(0);
  // Forged signature: signed with the wrong key.
  std::vector<BlockRef> genesis_refs;
  for (const auto& g : validator->dag().blocks_at(0)) genesis_refs.push_back(g->ref());
  auto forged = std::make_shared<const Block>(
      Block::make(1, 1, genesis_refs, {}, setup_.committee.coin().share(1, 1),
                  setup_.keypairs[2].private_key));
  const Actions actions = validator->on_block(forged, 1, 0);
  EXPECT_TRUE(actions.inserted.empty());
  EXPECT_EQ(validator->blocks_rejected(), 1u);
  EXPECT_FALSE(validator->dag().contains(forged->digest()));
}

TEST_F(ValidatorTest, FetchesMissingParents) {
  auto v0 = make_validator(0);
  auto v1 = make_validator(1);

  // v1 proposes rounds 1 and 2 with help from v2, v3 (simulated directly).
  auto v2 = make_validator(2);
  auto v3 = make_validator(3);
  const auto b1 = v1->on_tick(0).broadcast[0];
  const auto b2 = v2->on_tick(0).broadcast[0];
  const auto b3 = v3->on_tick(0).broadcast[0];
  v1->on_block(b2, 2, 1);
  Actions v1_round2 = v1->on_block(b3, 3, 1);
  ASSERT_EQ(v1_round2.broadcast.size(), 1u);
  const auto round2_block = v1_round2.broadcast[0];
  ASSERT_EQ(round2_block->round(), 2u);

  // v0 receives only the round-2 block: parents are missing, so it must
  // fetch them from the sender.
  const Actions actions = v0->on_block(round2_block, 1, 2);
  EXPECT_TRUE(actions.inserted.empty());
  ASSERT_EQ(actions.fetch_requests.size(), 1u);
  EXPECT_EQ(actions.fetch_requests[0].peer, 1u);
  const auto requested = actions.fetch_requests[0].refs;
  EXPECT_GE(requested.size(), 2u);  // b1..b3 minus whatever v0 already has

  // v1 serves the fetch; v0 inserts the parents, which unblocks the pending
  // round-2 block.
  const Actions served = v1->on_fetch_request(requested, 0, 3);
  ASSERT_EQ(served.responses.size(), 1u);
  Actions final_actions;
  for (const auto& block : served.responses[0].blocks) {
    final_actions.merge(v0->on_block(block, 1, 4));
  }
  EXPECT_TRUE(v0->dag().contains(round2_block->digest()));
}

TEST_F(ValidatorTest, FetchRetryRotatesPeers) {
  auto v0 = make_validator(0);
  ValidatorConfig config = config_for(0);

  // Create a block with unknown parents by building a foreign mini-cluster.
  auto cluster = make_cluster();
  std::vector<std::pair<ValidatorId, Actions>> initial;
  initial.emplace_back(1, cluster.nodes[1]->on_tick(0));
  initial.emplace_back(2, cluster.nodes[2]->on_tick(0));
  initial.emplace_back(3, cluster.nodes[3]->on_tick(0));
  cluster.pump(std::move(initial));
  BlockPtr deep = nullptr;
  for (const auto& block : cluster.nodes[1]->dag().blocks_at(2)) {
    deep = block;
    break;
  }
  ASSERT_NE(deep, nullptr);

  Actions first = v0->on_block(deep, 1, 0);
  ASSERT_FALSE(first.fetch_requests.empty());
  EXPECT_EQ(first.fetch_requests[0].peer, 1u);

  // Before the retry delay: no new requests.
  EXPECT_TRUE(v0->on_tick(millis(100)).fetch_requests.empty());
  // After the retry delay the request is re-issued to another peer (the
  // block author first).
  const Actions retried = v0->on_tick(millis(1000));
  ASSERT_FALSE(retried.fetch_requests.empty());
}

TEST_F(ValidatorTest, MempoolDrainsIntoProposals) {
  auto validator = make_validator(0);
  TxBatch batch;
  batch.id = 42;
  batch.count = 10;
  // Transactions trigger an immediate proposal when a quorum for the
  // previous round is already available (here: genesis).
  const Actions actions = validator->on_transactions({batch}, 0);
  ASSERT_EQ(actions.broadcast.size(), 1u);
  ASSERT_EQ(actions.broadcast[0]->batches().size(), 1u);
  EXPECT_EQ(actions.broadcast[0]->batches()[0].id, 42u);
  EXPECT_EQ(validator->mempool_size(), 0u);
  // A subsequent tick has nothing new to propose.
  EXPECT_TRUE(validator->on_tick(1).broadcast.empty());
}

TEST_F(ValidatorTest, BlockPayloadCapRespected) {
  ValidatorConfig config = config_for(0);
  config.max_block_batches = 2;
  ValidatorCore validator(setup_.committee, setup_.keypairs[0].private_key, config);
  std::vector<TxBatch> batches(5);
  for (std::size_t i = 0; i < 5; ++i) batches[i].id = i;
  const Actions actions = validator.on_transactions(batches, 0);
  ASSERT_EQ(actions.broadcast.size(), 1u);
  EXPECT_EQ(actions.broadcast[0]->batches().size(), 2u);
  EXPECT_EQ(validator.mempool_size(), 3u);
}

TEST_F(ValidatorTest, SharedMempoolInstanceFeedsProposals) {
  // The TCP runtime's path: submissions are admitted into a shared pool from
  // outside the core (off the loop thread), and the core only learns "the
  // pool has work" — on_mempool_ready must then propose with those batches.
  auto pool = std::make_shared<ShardedMempool>();
  ValidatorConfig config = config_for(0);
  config.mempool_instance = pool;
  ValidatorCore validator(setup_.committee, setup_.keypairs[0].private_key, config);

  TxBatch batch;
  batch.id = (7ull << ShardedMempool::kClientKeyShift) | 1;
  batch.count = 5;
  ASSERT_TRUE(admitted(pool->submit(batch)));
  EXPECT_EQ(validator.mempool_size(), 1u);

  const Actions actions = validator.on_mempool_ready(0);
  ASSERT_EQ(actions.broadcast.size(), 1u);
  ASSERT_EQ(actions.broadcast[0]->batches().size(), 1u);
  EXPECT_EQ(actions.broadcast[0]->batches()[0].id, batch.id);
  EXPECT_EQ(validator.mempool_size(), 0u);
}

TEST_F(ValidatorTest, OversizedBatchStillProposed) {
  // Carry-over regression at the proposal level: one batch above the block
  // payload cap must still make it into a block (else its shard wedges).
  ValidatorConfig config = config_for(0);
  config.max_block_payload_bytes = 1024;
  ValidatorCore validator(setup_.committee, setup_.keypairs[0].private_key, config);
  TxBatch huge;
  huge.id = 1;
  huge.count = 100;
  huge.tx_bytes = 512;  // 51200 bytes > 1024 cap
  const Actions actions = validator.on_transactions({huge}, 0);
  ASSERT_EQ(actions.broadcast.size(), 1u);
  ASSERT_EQ(actions.broadcast[0]->batches().size(), 1u);
  EXPECT_EQ(validator.mempool_size(), 0u);
}

TEST_F(ValidatorTest, MempoolAdmissionRejectsDuplicates) {
  auto validator = make_validator(0);
  TxBatch batch;
  batch.id = 9;
  batch.count = 3;
  // Proposals fire on submission, so the duplicate must ride in the same
  // call to be observable as an admission reject.
  const Actions actions = validator->on_transactions({batch, batch}, 0);
  ASSERT_EQ(actions.broadcast.size(), 1u);
  EXPECT_EQ(actions.broadcast[0]->batches().size(), 1u);
  EXPECT_EQ(validator->mempool().stats().duplicate, 1u);
}

TEST_F(ValidatorTest, MinRoundDelayPacesProposals) {
  ValidatorConfig config = config_for(0);
  config.min_round_delay = millis(100);
  ValidatorCore validator(setup_.committee, setup_.keypairs[0].private_key, config);
  EXPECT_EQ(validator.on_tick(0).broadcast.size(), 1u);  // first proposal free

  // Deliver a full round-1 quorum: proposal for round 2 must wait for the
  // pacing delay.
  auto v1 = make_validator(1);
  auto v2 = make_validator(2);
  auto v3 = make_validator(3);
  validator.on_block(v1->on_tick(0).broadcast[0], 1, millis(10));
  validator.on_block(v2->on_tick(0).broadcast[0], 2, millis(11));
  const Actions quorum = validator.on_block(v3->on_tick(0).broadcast[0], 3, millis(12));
  EXPECT_TRUE(quorum.broadcast.empty()) << "paced: too early to propose round 2";
  EXPECT_TRUE(validator.on_tick(millis(50)).broadcast.empty());
  const Actions after_delay = validator.on_tick(millis(101));
  ASSERT_EQ(after_delay.broadcast.size(), 1u);
  EXPECT_EQ(after_delay.broadcast[0]->round(), 2u);
}

TEST_F(ValidatorTest, EquivocatorProducesTwins) {
  ValidatorConfig config = config_for(0);
  config.byzantine_equivocate = true;
  ValidatorCore validator(setup_.committee, setup_.keypairs[0].private_key, config);
  const Actions actions = validator.on_tick(0);
  ASSERT_EQ(actions.broadcast.size(), 2u);
  EXPECT_EQ(actions.broadcast[0]->round(), actions.broadcast[1]->round());
  EXPECT_EQ(actions.broadcast[0]->author(), actions.broadcast[1]->author());
  EXPECT_NE(actions.broadcast[0]->digest(), actions.broadcast[1]->digest());
  // Both are valid blocks from the committee's perspective.
  EXPECT_EQ(validate_block(*actions.broadcast[1], setup_.committee), BlockValidity::kValid);
}

TEST_F(ValidatorTest, RecoverRestoresProposerRound) {
  auto validator = make_validator(0);
  const auto own1 = validator->on_tick(0).broadcast[0];

  // A fresh core replaying the logged block must not re-propose round 1.
  auto recovered = make_validator(0);
  recovered->recover_block(own1);
  EXPECT_EQ(recovered->last_proposed_round(), 1u);
  const Actions tick = recovered->on_tick(1);
  EXPECT_TRUE(tick.broadcast.empty());
  EXPECT_TRUE(recovered->dag().contains(own1->digest()));
}

TEST_F(ValidatorTest, DuplicateDeliveryIsIdempotent) {
  auto v0 = make_validator(0);
  auto v1 = make_validator(1);
  const auto block = v1->on_tick(0).broadcast[0];
  // First delivery inserts v1's block and (genesis already forms a quorum)
  // triggers v0's own round-1 proposal.
  const Actions first = v0->on_block(block, 1, 0);
  ASSERT_EQ(first.inserted.size(), 2u);
  EXPECT_EQ(first.inserted[0]->author(), 1u);
  EXPECT_EQ(first.inserted[1]->author(), 0u);
  // Re-delivery is a no-op: nothing inserted, nothing proposed.
  const Actions second = v0->on_block(block, 1, 1);
  EXPECT_TRUE(second.inserted.empty());
  EXPECT_TRUE(second.broadcast.empty());
  EXPECT_EQ(v0->dag().block_count(), 6u);  // 4 genesis + v1's block + own proposal
}

}  // namespace
}  // namespace mahimahi
