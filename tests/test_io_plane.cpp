// I/O plane tests: backend selection, wire-level equivalence between the
// epoll and io_uring data planes, and a wide (50-validator) TCP cluster
// smoke test under each backend.
//
// Equivalence is the contract that makes the backend pluggable: for the same
// sequence of send_frame calls, the bytes on the wire are identical, and for
// the same bytes on the wire — however fragmented — the parsed frames are
// identical. The tests below drive one side of a connection through a
// backend under test and keep the other side a plain blocking socket, so the
// observed byte stream is ground truth, not another instance of the code
// under test.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/io_backend.h"
#include "net/node_runtime.h"

namespace mahimahi::net {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds deadline = 15000ms) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return predicate();
}

// The backends under test: epoll always, uring where the kernel allows.
std::vector<IoBackendKind> backends_under_test() {
  std::vector<IoBackendKind> kinds{IoBackendKind::kEpoll};
  if (uring_backend_available()) kinds.push_back(IoBackendKind::kUring);
  return kinds;
}

// Frame sizes chosen to hit the seams: empty frames (header-only pending
// writes), single bytes, the uring pool-buffer size (16 KiB) plus both
// neighbors (a recv completion exactly full / spilling), and a frame far
// larger than one pool buffer (reassembly across completions).
const std::vector<std::size_t>& pathological_sizes() {
  static const std::vector<std::size_t> sizes = {
      0, 1, 3, 5, 0, 128, 16 * 1024 - 1, 16 * 1024, 16 * 1024 + 1, 2, 96 * 1024 + 7, 4, 0,
  };
  return sizes;
}

// One deterministic pseudo-random payload per frame index, shared by sender
// and verifier.
Bytes frame_payload(std::size_t index, std::size_t size) {
  Bytes payload(size);
  std::uint32_t x = 0x9e3779b9u * static_cast<std::uint32_t>(index + 1);
  for (std::size_t i = 0; i < size; ++i) {
    x = x * 1664525u + 1013904223u;
    payload[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return payload;
}

TEST(IoBackend, SelectionAndNames) {
  EXPECT_STREQ(to_string(IoBackendKind::kEpoll), "epoll");
  EXPECT_STREQ(to_string(IoBackendKind::kUring), "io_uring");

  EventLoop default_loop;  // raw EventLoop users keep the seed behavior
  EXPECT_EQ(default_loop.io_backend_kind(), IoBackendKind::kEpoll);
  EXPECT_FALSE(default_loop.io_backend().completion_driven());

  EventLoop auto_loop(IoBackendKind::kAuto);
  if (uring_backend_available()) {
    EXPECT_EQ(auto_loop.io_backend_kind(), IoBackendKind::kUring);
    EXPECT_TRUE(auto_loop.io_backend().completion_driven());
  } else {
    EXPECT_EQ(auto_loop.io_backend_kind(), IoBackendKind::kEpoll);
  }

  // Requesting uring explicitly must never crash: it either materializes or
  // falls back to epoll (compiled out / unsupported kernel).
  EventLoop forced(IoBackendKind::kUring);
  EXPECT_TRUE(forced.io_backend_kind() == IoBackendKind::kUring ||
              forced.io_backend_kind() == IoBackendKind::kEpoll);
}

// Egress equivalence: a TcpConnection under each backend sends the same
// pathological frame schedule; a plain blocking socket captures the raw
// byte stream. Every backend must produce byte-identical wire output.
TEST(IoPlaneEquivalence, EgressWireBytesAreByteIdentical) {
  std::vector<Bytes> streams;
  for (const IoBackendKind kind : backends_under_test()) {
    // Raw listening socket: the receiving side must not be the code under
    // test.
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    ASSERT_EQ(::listen(listen_fd, 1), 0);

    std::size_t expected_bytes = 0;
    for (std::size_t i = 0; i < pathological_sizes().size(); ++i) {
      expected_bytes += 4 + pathological_sizes()[i];
    }

    // Blocking reader thread drains everything the sender puts on the wire.
    Bytes captured;
    std::thread reader([&] {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      ASSERT_GE(fd, 0);
      std::uint8_t chunk[4096];
      while (captured.size() < expected_bytes) {
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got <= 0) break;
        captured.insert(captured.end(), chunk, chunk + got);
      }
      ::close(fd);
    });

    EventLoop loop(kind);
    ASSERT_EQ(loop.io_backend_kind(), kind);
    TcpConnectionPtr sender;
    std::atomic<bool> sent{false};
    tcp_connect(loop, "127.0.0.1", ntohs(addr.sin_port), [&](TcpConnectionPtr conn) {
      ASSERT_NE(conn, nullptr);
      sender = conn;
      sender->start([](BytesView) {}, [] {});
      for (std::size_t i = 0; i < pathological_sizes().size(); ++i) {
        sender->send_frame(frame_payload(i, pathological_sizes()[i]));
      }
      sent = true;
    });
    std::thread runner([&] { loop.run(); });
    EXPECT_TRUE(wait_for([&] { return sent.load(); }));
    reader.join();
    loop.stop();
    runner.join();
    ::close(listen_fd);

    ASSERT_EQ(captured.size(), expected_bytes) << to_string(kind);
    streams.push_back(std::move(captured));
  }

  // Epoll's stream is the reference; every other backend must match it.
  for (std::size_t i = 1; i < streams.size(); ++i) {
    ASSERT_EQ(streams[0], streams[i]) << "backend streams diverge";
  }
  // And the reference itself frames correctly.
  std::size_t offset = 0;
  for (std::size_t i = 0; i < pathological_sizes().size(); ++i) {
    std::uint32_t length;
    std::memcpy(&length, streams[0].data() + offset, 4);
    ASSERT_EQ(length, pathological_sizes()[i]);
    const Bytes expected = frame_payload(i, pathological_sizes()[i]);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           streams[0].begin() + static_cast<std::ptrdiff_t>(offset + 4)));
    offset += 4 + length;
  }
}

// Ingress equivalence: a raw socket writes the same byte stream — fragmented
// adversarially, including splits inside length headers — to a connection
// under each backend. The parsed frame sequence must be identical.
TEST(IoPlaneEquivalence, IngressParsedFramesAreByteIdentical) {
  // Build the wire image once.
  Bytes wire;
  for (std::size_t i = 0; i < pathological_sizes().size(); ++i) {
    const Bytes payload = frame_payload(i, pathological_sizes()[i]);
    const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
    const std::size_t at = wire.size();
    wire.resize(at + 4);
    std::memcpy(wire.data() + at, &length, 4);
    wire.insert(wire.end(), payload.begin(), payload.end());
  }

  for (const IoBackendKind kind : backends_under_test()) {
    EventLoop loop(kind);
    ASSERT_EQ(loop.io_backend_kind(), kind);

    std::mutex mutex;
    std::vector<Bytes> frames;
    TcpConnectionPtr accepted;
    TcpListener listener(loop, 0, [&](TcpConnectionPtr conn) {
      accepted = conn;
      conn->start(
          [&](BytesView frame) {
            std::lock_guard<std::mutex> g(mutex);
            frames.emplace_back(frame.begin(), frame.end());
          },
          [] {});
    });
    std::thread runner([&] { loop.run(); });

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(listener.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

    // Adversarial fragmentation: a fixed schedule of tiny and odd-sized
    // writes with yields between them, so frames arrive split across reads
    // (and, under uring, across multishot completions) at every alignment.
    static const std::size_t kChunks[] = {1, 2, 1, 3, 7, 1, 4, 64, 1, 2, 513, 4096, 31};
    std::size_t sent = 0;
    std::size_t step = 0;
    while (sent < wire.size()) {
      const std::size_t want =
          std::min(kChunks[step++ % std::size(kChunks)], wire.size() - sent);
      ssize_t wrote = ::send(fd, wire.data() + sent, want, MSG_NOSIGNAL);
      ASSERT_GT(wrote, 0);
      sent += static_cast<std::size_t>(wrote);
      if (step % 3 == 0) std::this_thread::sleep_for(1ms);
    }

    EXPECT_TRUE(wait_for([&] {
      std::lock_guard<std::mutex> g(mutex);
      return frames.size() >= pathological_sizes().size();
    })) << to_string(kind);
    ::close(fd);
    loop.stop();
    runner.join();

    std::lock_guard<std::mutex> g(mutex);
    ASSERT_EQ(frames.size(), pathological_sizes().size()) << to_string(kind);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      ASSERT_EQ(frames[i], frame_payload(i, pathological_sizes()[i]))
          << to_string(kind) << " frame " << i;
    }
  }
}

// Satellite: 50-validator TCP cluster smoke test. Wide committees are where
// the batched submission path earns its keep (each loop tick multiplexes 98
// sockets); the test asserts the protocol still commits with agreement and
// that the loop thread is not degenerating into a busy spin.
TEST(WideCluster, FiftyValidatorsCommitWithAgreementUnderEachBackend) {
  constexpr ValidatorId kValidators = 50;
  for (const IoBackendKind kind : backends_under_test()) {
    auto setup = Committee::make_test(kValidators);
    std::vector<NodeAddress> addresses(kValidators);
    {
      EventLoop probe_loop;
      std::vector<std::unique_ptr<TcpListener>> probes;
      for (ValidatorId i = 0; i < kValidators; ++i) {
        probes.push_back(
            std::make_unique<TcpListener>(probe_loop, 0, [](TcpConnectionPtr) {}));
        addresses[i].port = probes.back()->port();
      }
    }

    // Co-located wide cluster on a small machine: share one verifier cache
    // (every block verifies once, not 50 times) and keep verification inline
    // so the test exercises loop-thread multiplexing, not the worker pool.
    auto cache = std::make_shared<VerifierCache>();
    std::mutex mutex;
    std::vector<std::vector<BlockRef>> sequences(kValidators);
    std::vector<std::unique_ptr<NodeRuntime>> nodes;
    for (ValidatorId v = 0; v < kValidators; ++v) {
      NodeRuntimeConfig config;
      config.validator.id = v;
      config.validator.committer = mahi_mahi_5(1);
      config.validator.min_round_delay = millis(20);
      config.validator.signature_cache = cache;
      config.peers = addresses;
      config.tick_interval = millis(25);
      config.verify_threads = 0;
      config.io_backend = kind;
      nodes.push_back(std::make_unique<NodeRuntime>(
          setup.committee, setup.keypairs[v].private_key, config));
      nodes.back()->set_commit_handler([&, v](const CommittedSubDag& sub_dag) {
        std::lock_guard<std::mutex> g(mutex);
        for (const auto& block : sub_dag.blocks) sequences[v].push_back(block->ref());
      });
    }
    const auto started = std::chrono::steady_clock::now();
    for (auto& node : nodes) node->start();
    ASSERT_EQ(nodes[0]->io_backend_kind(), kind);
    TxBatch batch;
    batch.id = 7;
    batch.count = 10;
    nodes[0]->submit({batch});

    // Every node commits something (one core shared by 50 nodes: be patient).
    EXPECT_TRUE(wait_for(
        [&] {
          std::lock_guard<std::mutex> g(mutex);
          for (const auto& sequence : sequences) {
            if (sequence.empty()) return false;
          }
          return true;
        },
        120000ms))
        << "backend " << to_string(kind);
    const auto wall_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();

    // Bounded loop-thread time. Two failure shapes, two detectors:
    //   * a busy-spinning loop (poll returning immediately forever) shows as
    //     runaway wait syscalls — bound the average wake rate;
    //   * a loop wedged in processing shows as busy time rivaling the wall
    //     clock. The busy counter measures wall time inside callbacks, so on
    //     one contended core it includes preemption — only the full wall
    //     clock is a sound ceiling, not a tight fraction of it.
    for (ValidatorId v = 0; v < kValidators; ++v) {
      const auto report = nodes[v]->io_plane_report();
      EXPECT_LT(report.wait_syscalls, static_cast<std::uint64_t>(wall_micros) / 100)
          << "node " << v << " loop woke >10k/s under " << to_string(kind);
      EXPECT_LT(report.loop_busy_micros, static_cast<std::uint64_t>(wall_micros))
          << "node " << v << " loop thread ran hot under " << to_string(kind);
    }
    for (auto& node : nodes) node->stop();

    // Commit agreement: all sequences agree on their common prefix.
    std::lock_guard<std::mutex> g(mutex);
    for (ValidatorId v = 1; v < kValidators; ++v) {
      const std::size_t common = std::min(sequences[0].size(), sequences[v].size());
      for (std::size_t k = 0; k < common; ++k) {
        ASSERT_EQ(sequences[0][k], sequences[v][k])
            << "node " << v << " diverges at slot " << k << " under " << to_string(kind);
      }
    }
  }
}

}  // namespace
}  // namespace mahimahi::net
