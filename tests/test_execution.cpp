// Tests for the conflict-aware parallel execution subsystem (exec/): wave
// partition invariants against the pairwise-conflict ground truth, dedup /
// malformed / filler / access-violation parity with app::ReplicatedKv, the
// property that parallel apply is byte-identical in state_digest() to serial
// apply across randomized conflict rates and interleavings, the simulator's
// virtual-time execution model (zero-worker equivalence, crash/restart
// recovery, early-delivery ordering safety), and a live TCP cluster running
// the threaded engine end to end.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "app/replicated_kv.h"
#include "client/kv_batches.h"
#include "common/env.h"
#include "exec/access.h"
#include "exec/engine.h"
#include "net/node_runtime.h"
#include "sim/dag_builder.h"
#include "sim/harness.h"

namespace mahimahi::exec {
namespace {

using app::KvCommand;

TxBatch kv_batch(std::uint64_t id, const std::vector<KvCommand>& commands) {
  return client::make_kv_batch(id, commands);
}

// A batch that encodes KV commands but declares nothing (the undeclared
// path: access derived from the payload).
TxBatch undeclared_kv_batch(std::uint64_t id, const std::vector<KvCommand>& commands) {
  TxBatch batch = client::make_kv_batch(id, commands);
  batch.write_keys.clear();
  batch.read_keys.clear();
  return batch;
}

CommittedSubDag subdag_of(const std::vector<BlockPtr>& blocks) {
  CommittedSubDag subdag;
  subdag.slot = SlotId{blocks.back()->round(), 0};
  subdag.leader = blocks.back();
  subdag.blocks = blocks;
  return subdag;
}

// One-block sub-DAG carrying `batches`, rounds advancing per call so the
// builder accepts repeated use.
class SubdagFactory {
 public:
  SubdagFactory() : builder_(4) {
    for (const auto& g : builder_.dag().blocks_at(0)) {
      genesis_refs_.push_back(g->ref());
    }
  }

  CommittedSubDag make(std::vector<TxBatch> batches) {
    // Spread the batches over a couple of blocks so plans cross block
    // boundaries (committed order = block order, then batch order).
    const auto round = next_round_++;
    std::vector<BlockPtr> blocks;
    const std::size_t per_block = batches.size() <= 2 ? batches.size() : batches.size() / 2;
    std::size_t taken = 0;
    ValidatorId author = 0;
    while (taken < batches.size()) {
      const std::size_t n = std::min(per_block == 0 ? batches.size() : per_block,
                                     batches.size() - taken);
      std::vector<TxBatch> chunk(batches.begin() + taken, batches.begin() + taken + n);
      blocks.push_back(builder_.add_block(author++, round, genesis_refs_, chunk));
      taken += n;
    }
    if (blocks.empty()) {
      blocks.push_back(builder_.add_block(0, round, genesis_refs_, {}));
    }
    return subdag_of(blocks);
  }

 private:
  DagBuilder builder_;
  std::vector<BlockRef> genesis_refs_;
  Round next_round_ = 1;
};

// --------------------------------------------------------------------------
// Access sets
// --------------------------------------------------------------------------

TEST(AccessSets, DeriveDeclareAndConflict) {
  const std::vector<KvCommand> commands = {KvCommand::put("a", "1"),
                                           KvCommand::del("b"), KvCommand{}};
  const AccessSet derived = derive_kv_access(commands);
  EXPECT_EQ(derived.writes, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(derived.reads.empty());

  AccessSet declared;
  declared.writes = {"a", "b"};
  EXPECT_TRUE(declared_covers(declared, commands));
  declared.writes = {"a"};
  EXPECT_FALSE(declared_covers(declared, commands));

  AccessSet x, y;
  x.writes = {"k"};
  y.reads = {"k"};
  EXPECT_TRUE(conflicts(x, y));
  EXPECT_TRUE(conflicts(y, x));
  y = AccessSet{};
  y.writes = {"other"};
  EXPECT_FALSE(conflicts(x, y));
  AccessSet opaque;
  opaque.opaque = true;
  EXPECT_TRUE(conflicts(opaque, y));
  EXPECT_TRUE(conflicts(AccessSet{}, opaque));
}

// --------------------------------------------------------------------------
// Plan construction: wave invariants
// --------------------------------------------------------------------------

// Invariant 1: two transactions in the same wave never conflict.
// Invariant 2: every conflicting pair sits in waves ordered like the
// committed order (the earlier transaction in a strictly earlier wave).
// Plus: every transaction is placed in exactly one wave.
void expect_wave_invariants(const Plan& plan) {
  std::vector<std::uint32_t> seen(plan.txns.size(), 0);
  for (std::size_t w = 0; w < plan.waves.size(); ++w) {
    for (const std::uint32_t i : plan.waves[w]) {
      ++seen[i];
      EXPECT_EQ(plan.txns[i].wave, w);
    }
  }
  for (std::size_t i = 0; i < plan.txns.size(); ++i) {
    EXPECT_EQ(seen[i], 1u) << "txn " << i << " placed " << seen[i] << " times";
  }
  for (std::size_t i = 0; i < plan.txns.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.txns.size(); ++j) {
      if (!conflicts(plan.txns[i].access, plan.txns[j].access)) continue;
      EXPECT_LT(plan.txns[i].wave, plan.txns[j].wave)
          << "conflicting pair (" << i << ", " << j
          << ") not ordered by strictly increasing wave";
    }
  }
}

TEST(ExecutionPlan, RandomizedWaveInvariants) {
  const std::uint64_t iters = property_iters(20);
  const std::uint32_t rates[] = {0, 25, 75, 100};
  for (const std::uint32_t rate : rates) {
    for (std::uint64_t seed = 1; seed <= iters; ++seed) {
      Rng rng(seed * 977 + rate);
      client::KvWorkload workload;
      workload.conflict_percent = rate;
      workload.hot_keys = 3;
      workload.commands_per_batch = 4;
      std::vector<ExecTxn> txns;
      std::vector<TxBatch> batches;
      for (std::uint64_t i = 0; i < 12; ++i) {
        batches.push_back(client::synth_kv_batch(workload, seed, i, rng));
        if (rng.uniform(8) == 0) {
          // Conservative class: non-KV payload, declares nothing.
          TxBatch opaque;
          opaque.id = 5000 + i;
          opaque.payload = to_bytes("not a kv payload");
          batches.push_back(opaque);
        }
      }
      for (const TxBatch& batch : batches) txns.push_back(decode_batch(batch));
      std::unordered_set<Digest, DigestHasher> executed;
      const Plan plan = build_plan(std::move(txns), executed);
      expect_wave_invariants(plan);
    }
  }
}

TEST(ExecutionPlan, ConflictingBatchesKeepCommitOrderDisjointShareWaves) {
  std::vector<ExecTxn> txns;
  const auto a = kv_batch(1, {KvCommand::put("k", "1")});
  const auto b = kv_batch(2, {KvCommand::put("k", "2")});   // conflicts with a
  const auto c = kv_batch(3, {KvCommand::put("x", "3")});   // disjoint
  txns.push_back(decode_batch(a));
  txns.push_back(decode_batch(b));
  txns.push_back(decode_batch(c));
  std::unordered_set<Digest, DigestHasher> executed;
  const Plan plan = build_plan(std::move(txns), executed);
  EXPECT_EQ(plan.txns[0].wave, 0u);
  EXPECT_EQ(plan.txns[1].wave, 1u);  // same key: strictly after
  EXPECT_EQ(plan.txns[2].wave, 0u);  // disjoint: earliest wave
  EXPECT_EQ(plan.conflict_delayed, 1u);
}

TEST(ExecutionPlan, OpaqueBatchIsABarrier) {
  std::vector<ExecTxn> txns;
  txns.push_back(decode_batch(kv_batch(1, {KvCommand::put("a", "1")})));
  TxBatch opaque;
  opaque.id = 2;
  opaque.payload = to_bytes("unknown application bytes");
  txns.push_back(decode_batch(opaque));
  txns.push_back(decode_batch(kv_batch(3, {KvCommand::put("b", "2")})));
  std::unordered_set<Digest, DigestHasher> executed;
  const Plan plan = build_plan(std::move(txns), executed);
  // Barrier: after everything before it, before everything after it — even
  // though "a" and "b" are disjoint.
  EXPECT_LT(plan.txns[0].wave, plan.txns[1].wave);
  EXPECT_LT(plan.txns[1].wave, plan.txns[2].wave);
}

TEST(ExecutionPlan, SkippedBatchesRideAtFloorAndConstrainNothing) {
  std::vector<ExecTxn> txns;
  const auto original = kv_batch(1, {KvCommand::put("k", "v")});
  txns.push_back(decode_batch(original));
  txns.push_back(decode_batch(original));  // duplicate
  TxBatch filler;                          // empty payload
  filler.id = 9;
  filler.count = 10;
  txns.push_back(decode_batch(filler));
  TxBatch corrupt = kv_batch(2, {KvCommand::put("x", "y")});
  corrupt.payload.resize(corrupt.payload.size() - 1);
  corrupt.write_keys.clear();
  txns.push_back(decode_batch(corrupt));
  // A later writer of "k": must still be ordered against txn 0 only.
  txns.push_back(decode_batch(kv_batch(3, {KvCommand::put("k", "w")})));

  std::unordered_set<Digest, DigestHasher> executed;
  const Plan plan = build_plan(std::move(txns), executed);
  EXPECT_EQ(plan.txns[1].skip, Skip::kDuplicate);
  EXPECT_EQ(plan.txns[2].skip, Skip::kFiller);
  EXPECT_EQ(plan.txns[3].skip, Skip::kMalformed);
  // Skips deliver in the earliest admissible wave and carry no access set.
  EXPECT_EQ(plan.txns[1].wave, 0u);
  EXPECT_EQ(plan.txns[2].wave, 0u);
  EXPECT_EQ(plan.txns[3].wave, 0u);
  EXPECT_TRUE(plan.txns[1].access.touches_nothing());
  // The real conflict is still honoured.
  EXPECT_LT(plan.txns[0].wave, plan.txns[4].wave);
}

TEST(ExecutionPlan, AccessViolationDemotesToOpaqueButStillExecutes) {
  // Declares {a} but also writes undeclared key "b": demoted to the
  // conservative class (barrier), flagged, and still applied.
  TxBatch liar = client::make_kv_batch(
      7, {KvCommand::put("a", "1"), KvCommand::put("b", "2")});
  liar.write_keys = {"a"};

  ExecTxn txn = decode_batch(liar);
  EXPECT_TRUE(txn.access.opaque);
  EXPECT_TRUE(txn.access_violation);
  EXPECT_EQ(txn.skip, Skip::kNone);

  SubdagFactory factory;
  SerialExecutor executor;
  executor.apply_subdag(factory.make({liar}));
  EXPECT_EQ(executor.store().get("a"), "1");
  EXPECT_EQ(executor.store().get("b"), "2");
  EXPECT_EQ(executor.stats().access_violations, 1u);
  EXPECT_EQ(executor.stats().opaque, 1u);
}

// --------------------------------------------------------------------------
// Serial executor parity with ReplicatedKv
// --------------------------------------------------------------------------

TEST(SerialExecutorParity, HostileStreamMatchesReplicatedKv) {
  SubdagFactory factory;
  const auto resubmitted = kv_batch(1, {KvCommand::put("ctr", "1")});
  TxBatch corrupt = kv_batch(2, {KvCommand::put("x", "y")});
  corrupt.payload.resize(corrupt.payload.size() - 1);
  corrupt.write_keys.clear();
  TxBatch filler;
  filler.id = 3;
  filler.count = 50;
  TxBatch opaque;
  opaque.id = 4;
  opaque.payload = to_bytes("bench filler with content");

  const auto sub1 = factory.make({resubmitted, corrupt, filler,
                                  kv_batch(5, {KvCommand::put("k", "v1")})});
  const auto sub2 = factory.make({resubmitted,  // duplicate across sub-DAGs
                                  opaque, kv_batch(5, {KvCommand::put("k", "v2")}),
                                  kv_batch(1, {KvCommand::put("ctr", "2")})});

  app::ReplicatedKv replica;
  SerialExecutor executor;
  for (const auto& sub : {sub1, sub2}) {
    replica.apply_subdag(sub);
    executor.apply_subdag(sub);
  }
  EXPECT_EQ(executor.state_digest(), replica.state_digest());
  EXPECT_EQ(executor.stats().commands_applied, replica.commands_applied());
  EXPECT_EQ(executor.stats().deduplicated, replica.batches_deduplicated());
  EXPECT_EQ(executor.stats().malformed, replica.malformed_batches());
  EXPECT_EQ(executor.stats().subdags, 2u);
}

// --------------------------------------------------------------------------
// Engine: early delivery and the threaded path
// --------------------------------------------------------------------------

TEST(ExecutionEngine, WaveDeliveriesArriveInOrderWithEarlyFlags) {
  SubdagFactory factory;
  // Three writers of one key: three waves.
  const auto sub = factory.make({kv_batch(1, {KvCommand::put("k", "1")}),
                                 kv_batch(2, {KvCommand::put("k", "2")}),
                                 kv_batch(3, {KvCommand::put("k", "3")})});

  std::vector<WaveDelivery> waves;
  ExecutionEngine engine(ExecutionEngine::Options{.threads = 0},
                         [&](const WaveDelivery& wave) { waves.push_back(wave); });
  engine.execute(sub, /*enqueued_at=*/100);
  engine.drain();

  ASSERT_EQ(waves.size(), 3u);
  for (std::size_t i = 0; i < waves.size(); ++i) {
    ASSERT_EQ(waves[i].batches.size(), 1u);
    EXPECT_EQ(waves[i].batches[0].wave, i);
    EXPECT_EQ(waves[i].batches[0].early, i + 1 < waves.size());
    EXPECT_EQ(waves[i].subdag_complete, i + 1 == waves.size());
    EXPECT_EQ(waves[i].enqueued_at, 100);
  }
  const ExecStats stats = engine.stats();
  EXPECT_EQ(stats.subdags, 1u);
  EXPECT_EQ(stats.waves, 3u);
  EXPECT_EQ(stats.early_deliveries, 2u);
  EXPECT_EQ(engine.state_digest(), [&] {
    app::ReplicatedKv replica;
    replica.apply_subdag(sub);
    return replica.state_digest();
  }());
}

// The acceptance property: parallel apply (worker pool + wave merge) is
// byte-identical in state_digest() to serial apply and to ReplicatedKv, over
// >= 100 randomized schedules spanning 0/25/75/100% conflict rates, with
// duplicates, malformed payloads, filler, and opaque batches mixed in.
TEST(ExecutionEngineProperty, ParallelApplyByteIdenticalToSerial) {
  const std::uint64_t iters = property_iters(30);
  const std::uint32_t rates[] = {0, 25, 75, 100};
  for (const std::uint32_t rate : rates) {
    for (std::uint64_t seed = 1; seed <= iters; ++seed) {
      Rng rng(seed * 7919 + rate);
      client::KvWorkload workload;
      workload.conflict_percent = rate;
      workload.hot_keys = 4;
      workload.commands_per_batch = 5;

      SubdagFactory factory;
      app::ReplicatedKv replica;
      SerialExecutor serial;
      ExecutionEngine engine(ExecutionEngine::Options{.threads = 2});

      TxBatch previous;  // resubmission source
      for (int sub_index = 0; sub_index < 3; ++sub_index) {
        std::vector<TxBatch> batches;
        const std::uint64_t count = 3 + rng.uniform(6);
        for (std::uint64_t i = 0; i < count; ++i) {
          TxBatch batch = client::synth_kv_batch(
              workload, seed, static_cast<std::uint64_t>(sub_index) * 100 + i, rng);
          switch (rng.uniform(10)) {
            case 0:  // client resubmission
              if (!previous.payload.empty()) batch = previous;
              break;
            case 1:  // Byzantine garbage
              batch.payload.resize(batch.payload.size() / 2 + 1);
              batch.write_keys.clear();
              break;
            case 2:  // bandwidth filler
              batch.payload.clear();
              batch.write_keys.clear();
              break;
            case 3:  // undeclared KV (derived access path)
              batch.write_keys.clear();
              break;
            default:
              break;
          }
          previous = batch;
          batches.push_back(std::move(batch));
        }
        const CommittedSubDag sub = factory.make(std::move(batches));
        replica.apply_subdag(sub);
        serial.apply_subdag(sub);
        engine.execute(sub, /*enqueued_at=*/0);
      }

      const Digest parallel_digest = engine.state_digest();
      ASSERT_EQ(parallel_digest, serial.state_digest())
          << "rate=" << rate << " seed=" << seed;
      ASSERT_EQ(parallel_digest, replica.state_digest())
          << "rate=" << rate << " seed=" << seed;
      EXPECT_EQ(engine.stats().commands_applied, replica.commands_applied());
      EXPECT_EQ(engine.stats().deduplicated, replica.batches_deduplicated());
    }
  }
}

TEST(ExecutionEngine, SnapshotRoundTripClearsDedupHorizon) {
  SubdagFactory factory;
  const auto batch = kv_batch(1, {KvCommand::put("a", "1")});
  ExecutionEngine engine(ExecutionEngine::Options{.threads = 0});
  engine.execute(factory.make({batch}), 0);

  const Bytes snapshot = engine.app_snapshot();
  ExecutionEngine restored(ExecutionEngine::Options{.threads = 0});
  restored.install_snapshot({snapshot.data(), snapshot.size()});
  EXPECT_EQ(restored.state_digest(), engine.state_digest());

  // The dedup horizon moved with the snapshot: a pre-cut batch re-committed
  // after an install is executed again (documented trust-horizon caveat).
  restored.execute(factory.make({batch}), 0);
  restored.drain();
  EXPECT_EQ(restored.stats().deduplicated, 0u);
  EXPECT_EQ(restored.stats().batches_executed, 1u);
}

// --------------------------------------------------------------------------
// Simulator integration
// --------------------------------------------------------------------------

sim::SimConfig exec_sim_config() {
  sim::SimConfig config;
  config.protocol = sim::Protocol::kMahiMahi5;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(25);
  config.load_tps = 2'000;
  config.duration = seconds(8);
  config.warmup = seconds(2);
  config.seed = 11;
  config.execute_app = true;
  config.kv_conflict_percent = 25;
  return config;
}

// Wave scheduling is an ordering optimization, not a semantics change: the
// zero-delay (zero-worker / inline) run and the wave-event run produce
// byte-identical per-validator state. Execution is observational — it never
// feeds back into consensus — so both runs see the same commit stream.
TEST(SimExecution, ZeroWorkerRunBitIdenticalToWaveScheduledRun) {
  sim::SimConfig serial_config = exec_sim_config();
  serial_config.execution_wave_delay = 0;
  const sim::SimResult serial = sim::run_simulation(serial_config);

  sim::SimConfig waved_config = exec_sim_config();
  waved_config.execution_wave_delay = millis(2);
  const sim::SimResult waved = sim::run_simulation(waved_config);

  EXPECT_GT(serial.committed_tps, 0.0);
  EXPECT_GT(serial.exec_waves, 0u);
  EXPECT_EQ(serial.exec_order_violations, 0u);
  EXPECT_EQ(serial.exec_serial_mismatches, 0u);
  EXPECT_EQ(waved.exec_order_violations, 0u);
  EXPECT_EQ(waved.exec_serial_mismatches, 0u);
  ASSERT_EQ(serial.app_digests.size(), waved.app_digests.size());
  for (std::size_t v = 0; v < serial.app_digests.size(); ++v) {
    EXPECT_EQ(serial.app_digests[v], waved.app_digests[v]) << "validator " << v;
    EXPECT_NE(serial.app_digests[v], Digest{}) << "validator " << v << " executed nothing";
  }
}

// A crash mid-wave loses the executor; restart rebuilds it by WAL replay
// (serial inline, the recovery contract) and ends byte-identical to a serial
// re-apply of the recovered validator's own commit stream.
TEST(SimExecution, CrashRestartMidWaveRecoversStateDigest) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mm_exec_restart_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sim::SimConfig config = exec_sim_config();
  config.wal_dir = dir.string();
  config.duration = seconds(12);
  config.execution_wave_delay = millis(10);  // plans stay in flight across events
  config.kv_conflict_percent = 75;           // multi-wave plans
  config.restarts.push_back({/*id=*/2, /*crash_at=*/seconds(4),
                             /*restart_at=*/seconds(6)});
  const sim::SimResult result = sim::run_simulation(config);
  std::filesystem::remove_all(dir);

  EXPECT_GT(result.wal_replayed_blocks, 0u);
  EXPECT_GT(result.exec_waves, 0u);
  EXPECT_EQ(result.exec_order_violations, 0u);
  // The recovered validator (and everyone else) matches the serial reference
  // replay of its own recorded stream — snapshot base included.
  EXPECT_EQ(result.exec_serial_mismatches, 0u);
  EXPECT_NE(result.app_digests[2], Digest{});
}

// Early-delivery safety: under a conflict-heavy workload with real wave
// latency, batches are delivered before their sub-DAG retires — but never
// before every conflicting plan-order predecessor has settled.
TEST(SimExecution, EarlyDeliveriesNeverPrecedeConflictingPredecessors) {
  sim::SimConfig config = exec_sim_config();
  config.execution_wave_delay = millis(5);
  config.kv_conflict_percent = 75;
  config.kv_hot_keys = 2;
  const sim::SimResult result = sim::run_simulation(config);

  EXPECT_GT(result.exec_waves, 0u);
  EXPECT_GT(result.exec_early_deliveries, 0u);
  EXPECT_EQ(result.exec_order_violations, 0u);
  EXPECT_EQ(result.exec_serial_mismatches, 0u);
}

// --------------------------------------------------------------------------
// Live TCP cluster with the threaded engine
// --------------------------------------------------------------------------

bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds deadline = std::chrono::milliseconds(15000)) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(ExecCluster, ThreadedEngineMatchesSerialReplayOfOwnCommitStream) {
  const auto setup = Committee::make_test(4);
  std::vector<net::NodeAddress> addresses(4);
  {
    net::EventLoop probe_loop;
    std::vector<std::unique_ptr<net::TcpListener>> probes;
    for (int i = 0; i < 4; ++i) {
      probes.push_back(std::make_unique<net::TcpListener>(
          probe_loop, 0, [](net::TcpConnectionPtr) {}));
      addresses[i].port = probes.back()->port();
    }
  }

  std::vector<std::unique_ptr<net::NodeRuntime>> nodes;
  // Per-node commit stream recorded by the commit handler (loop thread),
  // replayed serially below as the ground truth for the engine's state.
  std::vector<std::vector<CommittedSubDag>> streams(4);
  std::vector<std::mutex> stream_mutexes(4);
  for (ValidatorId v = 0; v < 4; ++v) {
    net::NodeRuntimeConfig config;
    config.validator.id = v;
    config.validator.committer = mahi_mahi_5(1);
    config.validator.min_round_delay = millis(5);
    config.validator.execute_app = true;
    config.validator.execution_threads = 2;
    config.peers = addresses;
    config.tick_interval = millis(10);
    config.verify_threads = 2;
    nodes.push_back(std::make_unique<net::NodeRuntime>(
        setup.committee, setup.keypairs[v].private_key, config));
    nodes.back()->set_commit_handler([&streams, &stream_mutexes, v](
                                         const CommittedSubDag& sub_dag) {
      std::lock_guard<std::mutex> lock(stream_mutexes[v]);
      streams[v].push_back(sub_dag);
    });
  }
  for (auto& node : nodes) node->start();

  // Conflicting KV load from four client streams, plus one batch submitted
  // to two validators (the resubmission path the dedup horizon exists for).
  Rng rng(99);
  client::KvWorkload workload;
  workload.conflict_percent = 50;
  workload.commands_per_batch = 6;
  std::uint64_t expected_tx = 0;
  for (ValidatorId v = 0; v < 4; ++v) {
    std::vector<TxBatch> batches;
    for (std::uint64_t i = 0; i < 8; ++i) {
      batches.push_back(client::synth_kv_batch(workload, v, i, rng,
                                               steady_now_micros()));
      expected_tx += batches.back().count;
    }
    nodes[v]->submit(std::move(batches));
  }
  const TxBatch resubmitted =
      client::synth_kv_batch(workload, /*stream=*/77, /*sequence=*/0, rng,
                             steady_now_micros());
  nodes[0]->submit({resubmitted});
  nodes[1]->submit({resubmitted});
  expected_tx += 2 * resubmitted.count;

  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < expected_tx) return false;
    }
    return true;
  })) << "committed: " << nodes[0]->committed_transactions() << " of "
      << expected_tx;

  for (auto& node : nodes) node->stop();

  for (ValidatorId v = 0; v < 4; ++v) {
    ASSERT_TRUE(nodes[v]->execution_active());
    // Drains the engine, so the digest covers every commit the handler saw.
    const Digest engine_digest = nodes[v]->app_state_digest();
    app::ReplicatedKv reference;
    for (const auto& sub : streams[v]) reference.apply_subdag(sub);
    EXPECT_EQ(engine_digest, reference.state_digest()) << "validator " << v;

    const ExecStats stats = nodes[v]->execution_stats();
    EXPECT_GT(stats.subdags, 0u);
    EXPECT_GT(stats.batches_executed, 0u);
    EXPECT_EQ(stats.commands_applied, reference.commands_applied());
    EXPECT_EQ(stats.deduplicated, reference.batches_deduplicated());
    EXPECT_EQ(stats.malformed, 0u);
    EXPECT_EQ(stats.access_violations, 0u);
  }
}

}  // namespace
}  // namespace mahimahi::exec
