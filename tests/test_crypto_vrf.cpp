// Tests for the curve25519 module, DLEQ proofs, and the threshold VRF coin:
// group laws, scalar field axioms, proof soundness hooks, share verification,
// interpolation independence, and threshold behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/blake2b.h"
#include "crypto/curve25519.h"
#include "crypto/dleq.h"
#include "crypto/sha512.h"
#include "crypto/threshold_vrf.h"

namespace mahimahi::crypto {
namespace {

using namespace curve;

Digest seed(const char* tag) { return Blake2b::hash256(as_bytes_view(tag)); }

Scalar scalar_from_tag(const char* tag) {
  const auto h = Sha512::hash(as_bytes_view(tag));
  return sc_from_bytes64(h.data());
}

// --------------------------------------------------------------------------
// Curve group laws
// --------------------------------------------------------------------------

TEST(Curve25519, IdentityLaws) {
  const GroupElement b = ge_base();
  EXPECT_TRUE(ge_eq(ge_add(b, ge_identity()), b));
  EXPECT_TRUE(ge_eq(ge_add(ge_identity(), b), b));
  EXPECT_TRUE(ge_is_identity(ge_add(b, ge_neg(b))));
  EXPECT_TRUE(ge_is_identity(ge_identity()));
  EXPECT_FALSE(ge_is_identity(b));
}

TEST(Curve25519, AdditionCommutesAndAssociates) {
  const GroupElement b = ge_base();
  const GroupElement p = ge_scalar_mult(scalar_from_tag("p"), b);
  const GroupElement q = ge_scalar_mult(scalar_from_tag("q"), b);
  const GroupElement r = ge_scalar_mult(scalar_from_tag("r"), b);
  EXPECT_TRUE(ge_eq(ge_add(p, q), ge_add(q, p)));
  EXPECT_TRUE(ge_eq(ge_add(ge_add(p, q), r), ge_add(p, ge_add(q, r))));
}

TEST(Curve25519, ScalarMultMatchesRepeatedAddition) {
  const GroupElement b = ge_base();
  GroupElement acc = ge_identity();
  for (std::uint64_t k = 0; k <= 8; ++k) {
    EXPECT_TRUE(ge_eq(ge_scalar_mult(sc_from_u64(k), b), acc)) << "k=" << k;
    acc = ge_add(acc, b);
  }
}

TEST(Curve25519, ScalarMultDistributesOverScalarAddition) {
  const GroupElement b = ge_base();
  const Scalar x = scalar_from_tag("x");
  const Scalar y = scalar_from_tag("y");
  const GroupElement lhs = ge_scalar_mult(sc_add(x, y), b);
  const GroupElement rhs = ge_add(ge_scalar_mult(x, b), ge_scalar_mult(y, b));
  EXPECT_TRUE(ge_eq(lhs, rhs));
}

TEST(Curve25519, ScalarMultComposes) {
  // [x]([y]B) == [xy]B.
  const GroupElement b = ge_base();
  const Scalar x = scalar_from_tag("x");
  const Scalar y = scalar_from_tag("y");
  EXPECT_TRUE(ge_eq(ge_scalar_mult(x, ge_scalar_mult(y, b)),
                    ge_scalar_mult(sc_mul(x, y), b)));
}

TEST(Curve25519, BasePointHasOrderL) {
  // [L]B == identity: encode L and multiply.
  std::uint8_t l_bytes[32] = {};
  const std::uint64_t l_limbs[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                                    0x1000000000000000ULL};
  std::memcpy(l_bytes, l_limbs, 32);
  EXPECT_TRUE(ge_is_identity(ge_scalar_mult(l_bytes, ge_base())));
}

TEST(Curve25519, CompressDecompressRoundTrip) {
  for (const char* tag : {"a", "b", "c", "d"}) {
    const GroupElement p = ge_scalar_mult(scalar_from_tag(tag), ge_base());
    const auto enc = ge_compressed(p);
    const auto decoded = ge_decompress(enc.data());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(ge_eq(*decoded, p));
    EXPECT_EQ(ge_compressed(*decoded), enc);
  }
}

TEST(Curve25519, DecompressRejectsNonCanonicalY) {
  // y = p is non-canonical (equals 0 mod p but encoded above the modulus).
  std::uint8_t enc[32];
  const std::uint64_t p_limbs[4] = {0xffffffffffffffedULL, 0xffffffffffffffffULL,
                                    0xffffffffffffffffULL, 0x7fffffffffffffffULL};
  std::memcpy(enc, p_limbs, 32);
  EXPECT_FALSE(ge_decompress(enc).has_value());
}

TEST(Curve25519, DecompressRejectsNonCurveY) {
  // Find some y that is not on the curve: y = 2 happens to not be a valid
  // Ed25519 y-coordinate with either sign.
  std::uint8_t enc[32] = {2};
  const auto decoded = ge_decompress(enc);
  if (decoded.has_value()) {
    // If it decoded, the point must satisfy the curve equation — verify via
    // compress/decompress stability instead of failing the test blindly.
    EXPECT_TRUE(ge_eq(*decoded, *ge_decompress(ge_compressed(*decoded).data())));
  } else {
    SUCCEED();
  }
}

// --------------------------------------------------------------------------
// Scalar field axioms
// --------------------------------------------------------------------------

TEST(Curve25519Scalar, AddSubRoundTrip) {
  const Scalar a = scalar_from_tag("a");
  const Scalar b = scalar_from_tag("b");
  EXPECT_EQ(sc_sub(sc_add(a, b), b), a);
  EXPECT_EQ(sc_add(sc_sub(a, b), b), a);
}

TEST(Curve25519Scalar, NegationIsAdditiveInverse) {
  const Scalar a = scalar_from_tag("a");
  EXPECT_TRUE(sc_is_zero(sc_add(a, sc_neg(a))));
  EXPECT_TRUE(sc_is_zero(sc_neg(sc_zero())));
}

TEST(Curve25519Scalar, InversionIsMultiplicativeInverse) {
  for (const char* tag : {"u", "v", "w"}) {
    const Scalar a = scalar_from_tag(tag);
    EXPECT_EQ(sc_mul(a, sc_invert(a)), sc_one()) << tag;
  }
  EXPECT_EQ(sc_invert(sc_one()), sc_one());
}

TEST(Curve25519Scalar, SmallValueInverses) {
  // 2 * inv(2) == 1, and inv(inv(x)) == x.
  const Scalar two = sc_from_u64(2);
  EXPECT_EQ(sc_mul(two, sc_invert(two)), sc_one());
  const Scalar x = scalar_from_tag("x");
  EXPECT_EQ(sc_invert(sc_invert(x)), x);
}

TEST(Curve25519Scalar, MulAddMatchesSeparateOps) {
  const Scalar a = scalar_from_tag("a");
  const Scalar b = scalar_from_tag("b");
  const Scalar c = scalar_from_tag("c");
  EXPECT_EQ(sc_mul_add(a, b, c), sc_add(sc_mul(a, b), c));
}

TEST(Curve25519Scalar, StrictDecodingRejectsL) {
  std::uint8_t l_bytes[32];
  const std::uint64_t l_limbs[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                                    0x1000000000000000ULL};
  std::memcpy(l_bytes, l_limbs, 32);
  EXPECT_FALSE(sc_from_bytes32_strict(l_bytes).has_value());
  // L reduces to zero through the non-strict path.
  EXPECT_TRUE(sc_is_zero(sc_from_bytes32(l_bytes)));
}

TEST(Curve25519Scalar, ToFromBytesRoundTrip) {
  const Scalar a = scalar_from_tag("roundtrip");
  std::uint8_t bytes[32];
  sc_to_bytes(bytes, a);
  const auto back = sc_from_bytes32_strict(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, a);
}

// --------------------------------------------------------------------------
// DLEQ proofs
// --------------------------------------------------------------------------

struct DleqFixture {
  Scalar x = scalar_from_tag("dleq-witness");
  GroupElement g = ge_base();
  GroupElement h = vrf_hash_to_point(as_bytes_view("dleq-h"));
  GroupElement p;  // [x]G
  GroupElement s;  // [x]H
  Bytes context = to_bytes("ctx");

  DleqFixture() : p(ge_scalar_mult(x, g)), s(ge_scalar_mult(x, h)) {}
};

TEST(Dleq, ProveVerifyRoundTrip) {
  DleqFixture fx;
  const auto proof = dleq_prove(fx.x, fx.g, fx.h, fx.p, fx.s, fx.context);
  EXPECT_TRUE(dleq_verify(proof, fx.g, fx.h, fx.p, fx.s, fx.context));
}

TEST(Dleq, RejectsMismatchedStatement) {
  DleqFixture fx;
  const auto proof = dleq_prove(fx.x, fx.g, fx.h, fx.p, fx.s, fx.context);
  // Different S: [x+1]H.
  const GroupElement bad_s = ge_add(fx.s, fx.h);
  EXPECT_FALSE(dleq_verify(proof, fx.g, fx.h, fx.p, bad_s, fx.context));
  // Different P.
  const GroupElement bad_p = ge_add(fx.p, fx.g);
  EXPECT_FALSE(dleq_verify(proof, fx.g, fx.h, bad_p, fx.s, fx.context));
}

TEST(Dleq, RejectsUnequalDiscreteLogs) {
  DleqFixture fx;
  // S = [y]H with y != x: no valid proof should exist; also check a proof
  // made with x does not verify against it.
  const Scalar y = scalar_from_tag("other-witness");
  const GroupElement s_y = ge_scalar_mult(y, fx.h);
  const auto proof = dleq_prove(fx.x, fx.g, fx.h, fx.p, fx.s, fx.context);
  EXPECT_FALSE(dleq_verify(proof, fx.g, fx.h, fx.p, s_y, fx.context));
}

TEST(Dleq, RejectsTamperedProof) {
  DleqFixture fx;
  auto proof = dleq_prove(fx.x, fx.g, fx.h, fx.p, fx.s, fx.context);
  proof.z = sc_add(proof.z, sc_one());
  EXPECT_FALSE(dleq_verify(proof, fx.g, fx.h, fx.p, fx.s, fx.context));

  auto proof2 = dleq_prove(fx.x, fx.g, fx.h, fx.p, fx.s, fx.context);
  proof2.c = sc_add(proof2.c, sc_one());
  EXPECT_FALSE(dleq_verify(proof2, fx.g, fx.h, fx.p, fx.s, fx.context));
}

TEST(Dleq, ContextSeparation) {
  DleqFixture fx;
  const auto proof = dleq_prove(fx.x, fx.g, fx.h, fx.p, fx.s, fx.context);
  EXPECT_FALSE(dleq_verify(proof, fx.g, fx.h, fx.p, fx.s, as_bytes_view("other")));
}

TEST(Dleq, WireRoundTrip) {
  DleqFixture fx;
  const auto proof = dleq_prove(fx.x, fx.g, fx.h, fx.p, fx.s, fx.context);
  const auto decoded = DleqProof::from_bytes(proof.to_bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, proof);
}

TEST(Dleq, WireRejectsNonCanonicalScalars) {
  std::array<std::uint8_t, DleqProof::kWireBytes> bytes;
  bytes.fill(0xff);  // both halves >= L
  EXPECT_FALSE(DleqProof::from_bytes(bytes).has_value());
}

// --------------------------------------------------------------------------
// Hash to point
// --------------------------------------------------------------------------

TEST(VrfHashToPoint, DeterministicAndInputSensitive) {
  const GroupElement p1 = vrf_hash_to_point(as_bytes_view("round-1"));
  const GroupElement p2 = vrf_hash_to_point(as_bytes_view("round-1"));
  const GroupElement q = vrf_hash_to_point(as_bytes_view("round-2"));
  EXPECT_TRUE(ge_eq(p1, p2));
  EXPECT_FALSE(ge_eq(p1, q));
}

TEST(VrfHashToPoint, NeverIdentityAndInPrimeOrderSubgroup) {
  std::uint8_t l_bytes[32];
  const std::uint64_t l_limbs[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                                    0x1000000000000000ULL};
  std::memcpy(l_bytes, l_limbs, 32);
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t input[1] = {static_cast<std::uint8_t>(i)};
    const GroupElement p = vrf_hash_to_point({input, 1});
    EXPECT_FALSE(ge_is_identity(p));
    EXPECT_TRUE(ge_is_identity(ge_scalar_mult(l_bytes, p)));  // order divides L
  }
}

// --------------------------------------------------------------------------
// Threshold VRF
// --------------------------------------------------------------------------

std::vector<VrfShare> make_shares(const ThresholdVrfSetup& setup, BytesView input,
                                  const std::vector<std::uint32_t>& authors) {
  std::vector<VrfShare> shares;
  for (const auto a : authors) {
    shares.push_back(threshold_vrf_share(a, setup.secret_shares[a], input));
  }
  return shares;
}

TEST(ThresholdVrf, DealIsDeterministic) {
  const auto a = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto b = threshold_vrf_deal(4, 1, seed("epoch"));
  EXPECT_EQ(a.public_state.group_key(), b.public_state.group_key());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.public_state.share_key(i), b.public_state.share_key(i));
    EXPECT_EQ(a.secret_shares[i], b.secret_shares[i]);
  }
  const auto c = threshold_vrf_deal(4, 1, seed("other-epoch"));
  EXPECT_NE(a.public_state.group_key(), c.public_state.group_key());
}

TEST(ThresholdVrf, DealRejectsBadParameters) {
  EXPECT_THROW(threshold_vrf_deal(3, 1, seed("x")), std::invalid_argument);
  EXPECT_THROW(threshold_vrf_deal(0, 0, seed("x")), std::invalid_argument);
}

TEST(ThresholdVrf, SharesVerify) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto input = as_bytes_view("round-7");
  for (std::uint32_t a = 0; a < 4; ++a) {
    const auto share = threshold_vrf_share(a, setup.secret_shares[a], input);
    EXPECT_TRUE(setup.public_state.verify_share(input, share));
  }
}

TEST(ThresholdVrf, RejectsWrongAuthorOrInput) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto input = as_bytes_view("round-7");
  auto share = threshold_vrf_share(1, setup.secret_shares[1], input);
  share.author = 0;  // claim someone else's share
  EXPECT_FALSE(setup.public_state.verify_share(input, share));

  const auto share2 = threshold_vrf_share(1, setup.secret_shares[1], input);
  EXPECT_FALSE(setup.public_state.verify_share(as_bytes_view("round-8"), share2));

  auto share3 = threshold_vrf_share(1, setup.secret_shares[1], input);
  share3.author = 17;  // out of range
  EXPECT_FALSE(setup.public_state.verify_share(input, share3));
}

TEST(ThresholdVrf, RejectsTamperedSigma) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto input = as_bytes_view("round-7");
  auto share = threshold_vrf_share(2, setup.secret_shares[2], input);
  share.sigma[0] ^= 1;
  EXPECT_FALSE(setup.public_state.verify_share(input, share));
}

TEST(ThresholdVrf, CombineMatchesOracle) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto input = as_bytes_view("round-3");
  const auto combined =
      setup.public_state.combine(input, make_shares(setup, input, {0, 1, 2}));
  ASSERT_TRUE(combined.has_value());
  EXPECT_EQ(*combined, threshold_vrf_eval(setup.master_secret, input));
}

TEST(ThresholdVrf, FailsBelowThreshold) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto input = as_bytes_view("round-3");
  EXPECT_FALSE(
      setup.public_state.combine(input, make_shares(setup, input, {0, 1})).has_value());
  EXPECT_FALSE(setup.public_state.combine(input, {}).has_value());
}

TEST(ThresholdVrf, DuplicateAuthorsDoNotCount) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto input = as_bytes_view("round-3");
  EXPECT_FALSE(
      setup.public_state.combine(input, make_shares(setup, input, {0, 0, 1}))
          .has_value());
}

TEST(ThresholdVrf, InvalidSharesAreSkipped) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto input = as_bytes_view("round-3");
  auto shares = make_shares(setup, input, {0, 1, 2, 3});
  shares[1].sigma[3] ^= 0x40;  // corrupt one; three valid remain
  const auto combined = setup.public_state.combine(input, shares);
  ASSERT_TRUE(combined.has_value());
  EXPECT_EQ(*combined, threshold_vrf_eval(setup.master_secret, input));
}

TEST(ThresholdVrf, OutputsVaryAcrossInputs) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto out1 = threshold_vrf_eval(setup.master_secret, as_bytes_view("r1"));
  const auto out2 = threshold_vrf_eval(setup.master_secret, as_bytes_view("r2"));
  EXPECT_NE(out1.digest, out2.digest);
  EXPECT_NE(out1.value(), out2.value());
}

TEST(ThresholdVrf, ShareWireRoundTrip) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto share = threshold_vrf_share(3, setup.secret_shares[3], as_bytes_view("m"));
  const auto decoded = VrfShare::from_bytes(share.to_bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, share);

  Bytes truncated = share.to_bytes();
  truncated.pop_back();
  EXPECT_FALSE(VrfShare::from_bytes(truncated).has_value());
}

TEST(ThresholdVrf, ValueIsDigestPrefix) {
  const auto setup = threshold_vrf_deal(4, 1, seed("epoch"));
  const auto out = threshold_vrf_eval(setup.master_secret, as_bytes_view("m"));
  std::uint64_t expected;
  std::memcpy(&expected, out.digest.bytes.data(), 8);
  EXPECT_EQ(out.value(), expected);
}

// Interpolation independence: every 2f+1 subset of a 7-validator (f=2)
// committee reconstructs the same output.
class VrfSubsetTest : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(VrfSubsetTest, AnyQuorumYieldsSameOutput) {
  static const auto setup = threshold_vrf_deal(7, 2, seed("subsets"));
  const auto input = as_bytes_view("round-11");
  static const auto oracle = threshold_vrf_eval(setup.master_secret, input);
  const auto combined =
      setup.public_state.combine(input, make_shares(setup, input, GetParam()));
  ASSERT_TRUE(combined.has_value());
  EXPECT_EQ(*combined, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Quorums, VrfSubsetTest,
    ::testing::Values(std::vector<std::uint32_t>{0, 1, 2, 3, 4},
                      std::vector<std::uint32_t>{2, 3, 4, 5, 6},
                      std::vector<std::uint32_t>{0, 2, 4, 5, 6},
                      std::vector<std::uint32_t>{1, 2, 3, 5, 6},
                      std::vector<std::uint32_t>{0, 1, 3, 4, 6},
                      std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6}));

// Committee-size sweep: share/combine works across (n, f) shapes.
class VrfCommitteeTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(VrfCommitteeTest, EndToEnd) {
  const auto [n, f] = GetParam();
  const auto setup = threshold_vrf_deal(n, f, seed("sweep"));
  const auto input = as_bytes_view("round-42");
  std::vector<std::uint32_t> authors(2 * f + 1);
  for (std::uint32_t i = 0; i < authors.size(); ++i) authors[i] = n - 1 - i;
  const auto combined =
      setup.public_state.combine(input, make_shares(setup, input, authors));
  ASSERT_TRUE(combined.has_value());
  EXPECT_EQ(*combined, threshold_vrf_eval(setup.master_secret, input));
}

INSTANTIATE_TEST_SUITE_P(Shapes, VrfCommitteeTest,
                         ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{1, 0},
                                           std::pair<std::uint32_t, std::uint32_t>{4, 1},
                                           std::pair<std::uint32_t, std::uint32_t>{7, 2},
                                           std::pair<std::uint32_t, std::uint32_t>{10, 3},
                                           std::pair<std::uint32_t, std::uint32_t>{13,
                                                                                   4}));

}  // namespace
}  // namespace mahimahi::crypto
