// Checkpoint subsystem tests (checkpoint/): segmented WAL layout, snapshot
// codec + store, capture/install equivalence, the catch-up handshake, and
// the crash/recovery property at randomized kill points.
//
// The property under test is the subsystem's whole reason to exist: for any
// kill point — mid-append (torn tail), mid-segment-roll, mid-checkpoint
// (corrupt newest file) — recovery from newest-valid-checkpoint + segment
// suffix reaches a state byte-identical (decided log, consumption head, app
// state digest) to replaying the full monolithic log.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "app/kv_command.h"
#include "app/kv_store.h"
#include "checkpoint/cert.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/delta.h"
#include "checkpoint/segmented_wal.h"
#include "common/env.h"
#include "common/rng.h"
#include "serde/serde.h"
#include "sim/dag_builder.h"
#include "validator/validator.h"
#include "wal/wal.h"

namespace mahimahi {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const auto dir = fs::path(::testing::TempDir()) /
                   ("mahi_ckpt_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Observer core (never proposes): its DAG and commit sequence are a pure
// function of the delivered blocks, so any two recoveries of the same
// durable prefix must agree exactly.
ValidatorConfig observer_config(Round gc_depth) {
  ValidatorConfig vc;
  vc.observer = true;
  vc.committer.gc_depth = gc_depth;
  vc.validation.verify_signature = false;
  vc.validation.verify_coin_share = false;
  return vc;
}

// The deterministic workload: blocks of a fully-connected 4-validator DAG,
// delivered round-ascending (one block per step).
struct Workload {
  Committee::TestSetup setup = Committee::make_test(4);  // same seed as DagBuilder
  DagBuilder builder{4};
  std::vector<BlockPtr> blocks;

  explicit Workload(Round rounds) {
    builder.build_fully_connected(rounds);
    for (Round r = 1; r <= rounds; ++r) {
      for (ValidatorId v = 0; v < 4; ++v) {
        blocks.push_back(builder.dag().slot(r, v).front());
      }
    }
  }

  std::unique_ptr<ValidatorCore> make_core(Round gc_depth) const {
    return std::make_unique<ValidatorCore>(setup.committee,
                                           setup.keypairs[0].private_key,
                                           observer_config(gc_depth));
  }
};

// One synthetic app command per delivered block: the KvStore is then a pure
// function of the delivered sequence — the state a checkpoint's app snapshot
// must reproduce.
void apply_commits(app::KvStore& kv, const Actions& actions) {
  for (const auto& sub : actions.committed) {
    for (const auto& block : sub.blocks) {
      kv.apply(app::KvCommand::put(block->digest().hex(),
                                   std::to_string(block->round())));
    }
  }
}

// Byte fingerprint of a decided log: slot, kind, leader, committed digest.
// This is the "decided log byte-identity" the acceptance criterion compares.
Bytes decided_fingerprint(const std::vector<SlotDecision>& log) {
  serde::Writer w;
  for (const SlotDecision& d : log) {
    w.varint(d.slot.round);
    w.u32(d.slot.leader_offset);
    w.u8(static_cast<std::uint8_t>(d.kind));
    w.u32(d.leader);
    if (d.kind == SlotDecision::Kind::kCommit) w.digest(d.ref.digest);
  }
  return std::move(w).take();
}

constexpr Round kGcDepth = 8;
constexpr Round kCkptInterval = 6;

// Drives an observer through `steps` deliveries, mirroring every insertion
// into BOTH layouts (monolithic FileWal at `mono_path`, SegmentedWal +
// CheckpointStore at `seg_dir`) the way the runtime does: append + sync per
// batch, checkpoint cut + segment roll when the horizon advances, retire
// with one cut of lag. Cuts happen at step starts, so the log's final record
// is always strictly after the newest cut (a torn tail never reaches into
// checkpointed state).
struct DriveResult {
  std::unique_ptr<ValidatorCore> core;
  app::KvStore kv;
  std::uint64_t checkpoints = 0;
};

DriveResult drive(const Workload& load, std::size_t steps,
                  const std::string& mono_path, const std::string& seg_dir) {
  DriveResult out;
  out.core = load.make_core(kGcDepth);
  FileWal mono(mono_path);
  SegmentedWalOptions seg_options;
  seg_options.segment_bytes = 4096;  // small: every trial exercises rolls
  SegmentedWal seg(seg_dir, seg_options);
  CheckpointStore store(seg_dir);
  std::uint64_t sequence = 0;
  std::uint64_t keep_from_previous = 0;
  Round last_horizon = 0;

  for (std::size_t i = 0; i < steps && i < load.blocks.size(); ++i) {
    const Round horizon = out.core->dag().pruned_below();
    if (horizon > 0 && horizon >= last_horizon + kCkptInterval) {
      CheckpointData data = out.core->capture_checkpoint();
      data.sequence = ++sequence;
      data.app_state = out.kv.snapshot_bytes();
      data.app_digest = out.kv.state_digest();
      const std::uint64_t keep_from = seg.roll_segment();
      const Bytes encoded = encode_checkpoint(data);
      store.write(data.sequence, {encoded.data(), encoded.size()});
      store.retire(2);
      seg.retire_segments_below(keep_from_previous);
      keep_from_previous = keep_from;
      last_horizon = horizon;
      ++out.checkpoints;
    }
    const BlockPtr& block = load.blocks[i];
    Actions actions = out.core->on_block(block, block->author(), 0);
    for (const BlockPtr& inserted : actions.inserted) {
      mono.append_block(*inserted, false);
      seg.append_block(*inserted, false);
    }
    mono.sync();
    seg.sync();
    apply_commits(out.kv, actions);
  }
  return out;
}

DriveResult recover_monolithic(const Workload& load, const std::string& mono_path) {
  DriveResult out;
  out.core = load.make_core(kGcDepth);
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool) {
    apply_commits(out.kv, out.core->recover_block(std::move(block)));
  };
  FileWal::replay(mono_path, visitor);
  return out;
}

DriveResult recover_checkpointed(const Workload& load, const std::string& seg_dir) {
  DriveResult out;
  out.core = load.make_core(kGcDepth);
  CheckpointStore store(seg_dir);
  if (auto data = store.load_newest_valid()) {
    out.kv = app::KvStore::restore({data->app_state.data(), data->app_state.size()});
    // The snapshot must hash to the digest the writer recorded — the install
    // is refused otherwise (state verification, not trust).
    EXPECT_EQ(out.kv.state_digest(), data->app_digest);
    out.core->install_checkpoint(*data, 0);
    ++out.checkpoints;
  }
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool) {
    apply_commits(out.kv, out.core->recover_block(std::move(block)));
  };
  SegmentedWal::replay(seg_dir, visitor);
  return out;
}

// Like drive(), but cuts land as delta links while the base+delta chain is
// short enough (mirroring NodeRuntime::start_cut): the app contributes its
// touched-key window instead of a full snapshot, segments roll and retire
// only at base cuts (chain-granular retirement, one chain of lag), and any
// linkage mismatch falls back to a re-base. max_deltas == 0 reproduces
// drive()'s monolithic every-cut-is-a-base layout through the same code.
struct ChainDriveResult {
  std::unique_ptr<ValidatorCore> core;
  app::KvStore kv;
  std::uint64_t checkpoints = 0;
  std::uint64_t delta_cuts = 0;
};

ChainDriveResult drive_chain(const Workload& load, std::size_t steps,
                             const std::string& mono_path, const std::string& seg_dir,
                             std::size_t max_deltas, std::size_t retire_keep = 2) {
  ChainDriveResult out;
  out.core = load.make_core(kGcDepth);
  FileWal mono(mono_path);
  SegmentedWalOptions seg_options;
  seg_options.segment_bytes = 4096;
  SegmentedWal seg(seg_dir, seg_options);
  CheckpointStore store(seg_dir);
  std::uint64_t sequence = 0;
  std::uint64_t base_sequence = 0;
  std::uint64_t keep_from_previous = 0;
  std::optional<CheckpointData> last_cut;
  Round last_horizon = 0;

  for (std::size_t i = 0; i < steps && i < load.blocks.size(); ++i) {
    const Round horizon = out.core->dag().pruned_below();
    if (horizon > 0 && horizon >= last_horizon + kCkptInterval) {
      CheckpointData data = out.core->capture_checkpoint();
      data.sequence = ++sequence;
      data.app_digest = out.kv.state_digest();
      Bytes app_delta = out.kv.delta_bytes();
      out.kv.clear_delta_window();

      bool is_base = true;
      Bytes record;
      if (max_deltas > 0 && last_cut.has_value() &&
          data.sequence - base_sequence <= max_deltas) {
        try {
          record = encode_checkpoint_delta(make_checkpoint_delta(
              *last_cut, data, base_sequence, std::move(app_delta)));
          is_base = false;
          ++out.delta_cuts;
        } catch (const std::invalid_argument&) {
        }
      }
      if (is_base) {
        data.app_state = out.kv.snapshot_bytes();
        record = encode_checkpoint(data);
        base_sequence = data.sequence;
      }

      if (is_base) {
        store.write(data.sequence, {record.data(), record.size()});
        if (retire_keep > 0) store.retire(retire_keep);
        const std::uint64_t keep_from = seg.roll_segment();
        seg.retire_segments_below(keep_from_previous);
        keep_from_previous = keep_from;
      } else {
        store.write_delta(data.sequence, {record.data(), record.size()});
      }
      last_cut = std::move(data);
      last_horizon = horizon;
      ++out.checkpoints;
    }
    const BlockPtr& block = load.blocks[i];
    Actions actions = out.core->on_block(block, block->author(), 0);
    for (const BlockPtr& inserted : actions.inserted) {
      mono.append_block(*inserted, false);
      seg.append_block(*inserted, false);
    }
    mono.sync();
    seg.sync();
    apply_commits(out.kv, actions);
  }
  return out;
}

ChainDriveResult recover_chain(const Workload& load, const std::string& seg_dir) {
  ChainDriveResult out;
  out.core = load.make_core(kGcDepth);
  CheckpointStore store(seg_dir);
  if (auto data = store.load_newest_valid()) {
    out.kv = app::KvStore::restore({data->app_state.data(), data->app_state.size()});
    // The reconstructed base+delta state must hash to the digest the writer
    // recorded at the newest link — the install is refused otherwise.
    EXPECT_EQ(out.kv.state_digest(), data->app_digest);
    out.core->install_checkpoint(*data, 0);
    ++out.checkpoints;
  }
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool) {
    apply_commits(out.kv, out.core->recover_block(std::move(block)));
  };
  SegmentedWal::replay(seg_dir, visitor);
  return out;
}

template <typename ResultA, typename ResultB>
void expect_equivalent(const ResultA& a, const ResultB& b,
                       const std::string& label) {
  EXPECT_EQ(a.core->committer().next_pending_slot(),
            b.core->committer().next_pending_slot())
      << label;
  EXPECT_EQ(decided_fingerprint(a.core->committer().decided_sequence()),
            decided_fingerprint(b.core->committer().decided_sequence()))
      << label;
  EXPECT_EQ(a.kv.state_digest(), b.kv.state_digest()) << label;
  EXPECT_EQ(a.core->dag().highest_round(), b.core->dag().highest_round()) << label;
}

// --- Segmented WAL layout ----------------------------------------------------

TEST(SegmentedWal, ByteStreamMatchesMonolithicAndRolls) {
  Workload load(10);
  const std::string mono_path =
      (fs::path(fresh_dir("bytes_mono")) / "log.wal").string();
  const std::string seg_dir = fresh_dir("bytes_seg");

  FileWal mono(mono_path);
  SegmentedWalOptions options;
  options.segment_bytes = 2048;
  SegmentedWal seg(seg_dir, options);
  for (const BlockPtr& block : load.blocks) {
    mono.append_block(*block, false);
    seg.append_block(*block, false);
  }
  mono.sync();
  seg.sync();

  ASSERT_GT(seg.active_segment(), 0u) << "budget should have forced rolls";

  // Concatenating the segments reproduces the monolithic byte stream: the
  // two layouts share the record framing exactly.
  Bytes mono_bytes, seg_bytes;
  {
    std::ifstream in(mono_path, std::ios::binary);
    mono_bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  for (std::uint64_t i = 0; i <= seg.active_segment(); ++i) {
    std::ifstream in(SegmentedWal::segment_path(seg_dir, i), std::ios::binary);
    seg_bytes.insert(seg_bytes.end(), std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  }
  EXPECT_EQ(mono_bytes, seg_bytes);

  // Replay yields the same records in the same order.
  std::vector<Digest> replayed;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool) { replayed.push_back(block->digest()); };
  const auto result = SegmentedWal::replay(seg_dir, visitor);
  EXPECT_FALSE(result.corrupt_tail);
  EXPECT_EQ(result.records, load.blocks.size());
  ASSERT_EQ(replayed.size(), load.blocks.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], load.blocks[i]->digest());
  }
}

TEST(SegmentedWal, RetireUpdatesManifestAtomicallyAndReplaySkipsRetired) {
  Workload load(12);
  const std::string dir = fresh_dir("retire");
  SegmentedWalOptions options;
  options.segment_bytes = 2048;
  auto seg = std::make_unique<SegmentedWal>(dir, options);
  for (const BlockPtr& block : load.blocks) seg->append_block(*block, false);
  const std::uint64_t boundary = seg->roll_segment();
  ASSERT_GE(boundary, 2u);

  seg->retire_segments_below(boundary);
  EXPECT_EQ(seg->base_segment(), boundary);
  EXPECT_EQ(seg->segments_retired(), boundary);
  EXPECT_EQ(SegmentedWal::read_manifest(dir), boundary);
  for (std::uint64_t i = 0; i < boundary; ++i) {
    EXPECT_FALSE(fs::exists(SegmentedWal::segment_path(dir, i))) << i;
  }

  // A stale file below the manifest base (crash between manifest write and
  // unlink) is ignored by replay.
  {
    std::ofstream stale(SegmentedWal::segment_path(dir, 0), std::ios::binary);
    stale << "garbage that must never be parsed";
  }
  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = SegmentedWal::replay(dir, visitor);
  EXPECT_FALSE(result.corrupt_tail);
  EXPECT_EQ(replayed, 0u);  // everything before the boundary was retired

  // Appends continue cleanly after reopen (the layout survives restarts).
  seg.reset();
  SegmentedWal reopened(dir, options);
  EXPECT_EQ(reopened.base_segment(), boundary);
  reopened.append_block(*load.blocks[0], false);
  reopened.sync();
  replayed = 0;
  SegmentedWal::replay(dir, visitor);
  EXPECT_EQ(replayed, 1u);
}

TEST(SegmentedWal, TornTailOfActiveSegmentTruncates) {
  Workload load(6);
  const std::string dir = fresh_dir("torn");
  SegmentedWalOptions options;
  options.segment_bytes = 4096;
  {
    SegmentedWal seg(dir, options);
    for (const BlockPtr& block : load.blocks) seg.append_block(*block, false);
    seg.sync();
  }
  const auto indexes = SegmentedWal::list_segments(dir);
  ASSERT_FALSE(indexes.empty());
  const std::string active = SegmentedWal::segment_path(dir, indexes.back());
  const auto size = fs::file_size(active);
  fs::resize_file(active, size - 5);  // tear the last record

  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  auto result = SegmentedWal::replay(dir, visitor);
  EXPECT_TRUE(result.corrupt_tail);
  EXPECT_EQ(result.records, load.blocks.size() - 1);

  // The truncation left a clean boundary: a second replay is torn-free.
  result = SegmentedWal::replay(dir, visitor);
  EXPECT_FALSE(result.corrupt_tail);
}

TEST(SegmentedWal, CorruptMidLogSegmentStopsReplay) {
  Workload load(12);
  const std::string dir = fresh_dir("midcorrupt");
  SegmentedWalOptions options;
  options.segment_bytes = 2048;
  {
    SegmentedWal seg(dir, options);
    for (const BlockPtr& block : load.blocks) seg.append_block(*block, false);
    seg.sync();
  }
  ASSERT_GE(SegmentedWal::list_segments(dir).size(), 3u);
  // Flip a payload byte in the middle of segment 1 (sealed, not last).
  const std::string victim = SegmentedWal::segment_path(dir, 1);
  {
    std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    file.put('\xff');
  }
  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = SegmentedWal::replay(dir, visitor);
  EXPECT_TRUE(result.corrupt_tail);
  EXPECT_LT(replayed, load.blocks.size());
  // Nothing past the damaged segment was visited (segment 0 + the clean
  // prefix of segment 1 at most).
  EXPECT_LE(result.segments, 2u);
}

TEST(SegmentedWal, ListSegmentsParsesAnyCanonicalIndexWidth) {
  const std::string dir = fresh_dir("wide");
  // Indexes are written zero-padded to 8 digits, but an index that outgrows
  // the padding must stay visible to replay — a silently dropped file would
  // truncate recovery mid-log. Non-canonical strays (unpadded digits that
  // segment_path could never reopen, junk, overflow) must stay INVISIBLE:
  // listing one would poison the replay contiguity check instead.
  for (const char* name :
       {"seg-00000007.wal", "seg-100000000.wal", "seg-123.wal", "seg-x1.wal",
        "seg-.wal", "seg-99999999999999999999.wal",
        "seg-999999999999999999999.wal"}) {
    std::ofstream(fs::path(dir) / name).put('\0');
  }
  const auto indexes = SegmentedWal::list_segments(dir);
  ASSERT_EQ(indexes.size(), 2u);
  EXPECT_EQ(indexes[0], 7u);
  EXPECT_EQ(indexes[1], 100000000u);
  EXPECT_EQ(SegmentedWal::segment_path(dir, 100000000u),
            (fs::path(dir) / "seg-100000000.wal").string())
      << "every listed index must round-trip through the path formatter";
}

// --- Checkpoint codec + store ------------------------------------------------

TEST(Checkpoint, CodecRoundTripsACapturedCut) {
  Workload load(24);
  auto core = load.make_core(kGcDepth);
  app::KvStore kv;
  for (const BlockPtr& block : load.blocks) {
    apply_commits(kv, core->on_block(block, block->author(), 0));
  }
  ASSERT_GT(core->dag().pruned_below(), 0u) << "GC must have advanced";

  CheckpointData data = core->capture_checkpoint();
  data.sequence = 7;
  data.app_state = kv.snapshot_bytes();
  data.app_digest = kv.state_digest();

  const Bytes encoded = encode_checkpoint(data);
  const CheckpointData decoded = decode_checkpoint({encoded.data(), encoded.size()});
  EXPECT_EQ(decoded.sequence, 7u);
  EXPECT_EQ(decoded.author, data.author);
  EXPECT_EQ(decoded.horizon, data.horizon);
  EXPECT_EQ(decoded.head, data.head);
  EXPECT_EQ(decoded.decided.size(), data.decided.size());
  EXPECT_EQ(decoded.delivered, data.delivered);
  ASSERT_EQ(decoded.blocks.size(), data.blocks.size());
  for (std::size_t i = 0; i < decoded.blocks.size(); ++i) {
    EXPECT_EQ(decoded.blocks[i]->digest(), data.blocks[i]->digest());
  }
  EXPECT_EQ(decoded.app_digest, data.app_digest);
  EXPECT_EQ(app::KvStore::restore({decoded.app_state.data(), decoded.app_state.size()})
                .state_digest(),
            kv.state_digest());

  // The decoded cut passes semantic verification.
  ValidationOptions validation;
  validation.verify_signature = false;
  validation.verify_coin_share = false;
  const CommitterOptions shape = observer_config(kGcDepth).committer;
  EXPECT_EQ(verify_checkpoint(decoded, load.setup.committee, shape, validation), "");

  // A head the decided log does not account for slot-by-slot is rejected —
  // an empty log cannot claim progress, and a gap in the chain is caught.
  CheckpointData fabricated = decoded;
  fabricated.decided.clear();
  EXPECT_NE(verify_checkpoint(fabricated, load.setup.committee, shape, validation), "");
  CheckpointData gapped = decoded;
  ASSERT_GT(gapped.decided.size(), 2u);
  gapped.decided.erase(gapped.decided.begin() + 1);
  EXPECT_NE(verify_checkpoint(gapped, load.setup.committee, shape, validation), "");

  // Any flipped payload byte is caught by the CRC frame.
  Bytes corrupt = encoded;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_THROW(decode_checkpoint({corrupt.data(), corrupt.size()}), serde::SerdeError);
}

// A checkpoint frame that is well-formed up to the three element-count
// varints, carrying the given counts with nothing behind them.
Bytes frame_with_counts(std::uint64_t decided, std::uint64_t delivered,
                        std::uint64_t blocks) {
  serde::Writer w;
  w.u32(0x4d4d434b);  // kCheckpointMagic
  w.u8(1);            // kCheckpointVersion
  w.u64(1);           // sequence
  w.u32(0);           // author
  w.varint(4);        // horizon
  w.varint(4);        // head slot round
  w.u32(0);           // head slot leader offset
  w.varint(0);        // last_proposed_round
  w.varint(decided);
  w.varint(delivered);
  w.varint(blocks);
  return wal_frame_record({w.data().data(), w.data().size()});
}

TEST(Checkpoint, CodecRejectsAbsurdElementCountsAsDecodeErrors) {
  // Checkpoints arrive off the wire, so the counts are attacker-controlled:
  // a claimed 2^60 elements must fail the decode's bounds check as a
  // SerdeError — not reach vector::reserve and throw std::length_error,
  // which would escape a SerdeError-only handler.
  const std::uint64_t absurd = std::uint64_t{1} << 60;
  for (const Bytes& frame :
       {frame_with_counts(absurd, 0, 0), frame_with_counts(0, absurd, 0),
        frame_with_counts(0, 0, absurd)}) {
    EXPECT_THROW(decode_checkpoint({frame.data(), frame.size()}), serde::SerdeError);
  }
}

TEST(Checkpoint, StoreFallsBackPastCorruptNewest) {
  Workload load(30);
  const std::string dir = fresh_dir("store");
  CheckpointStore store(dir);
  auto core = load.make_core(kGcDepth);
  app::KvStore kv;
  std::uint64_t sequence = 0;
  Round last_horizon = 0;
  for (const BlockPtr& block : load.blocks) {
    apply_commits(kv, core->on_block(block, block->author(), 0));
    const Round horizon = core->dag().pruned_below();
    if (horizon > 0 && horizon >= last_horizon + kCkptInterval) {
      CheckpointData data = core->capture_checkpoint();
      data.sequence = ++sequence;
      const Bytes encoded = encode_checkpoint(data);
      store.write(data.sequence, {encoded.data(), encoded.size()});
      last_horizon = horizon;
    }
  }
  ASSERT_GE(sequence, 2u);
  auto newest = store.load_newest_valid();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->sequence, sequence);

  // Mid-checkpoint crash model: the newest file is torn. Loading falls back
  // to the previous sequence instead of failing.
  const std::string newest_path = CheckpointStore::checkpoint_path(dir, sequence);
  fs::resize_file(newest_path, fs::file_size(newest_path) / 2);
  auto fallback = store.load_newest_valid();
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->sequence, sequence - 1);

  // retire() keeps the newest two files.
  store.retire(2);
  EXPECT_LE(CheckpointStore::list(dir).size(), 2u);
}

// --- Capture/install equivalence + catch-up handshake ------------------------

TEST(Checkpoint, InstallReproducesTheCapturedValidatorAndKeepsAgreeing) {
  Workload load(40);
  auto source = load.make_core(kGcDepth);
  app::KvStore kv;
  const std::size_t split = 28 * 4;  // install mid-run, then keep feeding both
  for (std::size_t i = 0; i < split; ++i) {
    const BlockPtr& block = load.blocks[i];
    apply_commits(kv, source->on_block(block, block->author(), 0));
  }
  ASSERT_GT(source->dag().pruned_below(), 0u);

  CheckpointData data = source->capture_checkpoint();
  data.app_state = kv.snapshot_bytes();
  data.app_digest = kv.state_digest();
  // Round-trip through the codec: install what the wire would carry.
  const Bytes encoded = encode_checkpoint(data);
  const CheckpointData wire = decode_checkpoint({encoded.data(), encoded.size()});

  auto target = load.make_core(kGcDepth);
  app::KvStore target_kv =
      app::KvStore::restore({wire.app_state.data(), wire.app_state.size()});
  ASSERT_EQ(target_kv.state_digest(), wire.app_digest);
  Actions install = target->install_checkpoint(wire, 0);
  EXPECT_FALSE(install.inserted.empty());
  EXPECT_EQ(target->checkpoints_installed(), 1u);

  EXPECT_EQ(target->committer().next_pending_slot(),
            source->committer().next_pending_slot());
  EXPECT_EQ(decided_fingerprint(target->committer().decided_sequence()),
            decided_fingerprint(source->committer().decided_sequence()));
  EXPECT_EQ(target->dag().highest_round(), source->dag().highest_round());
  EXPECT_EQ(target->dag().pruned_below(), source->dag().pruned_below());

  // From here on the two must stay in lockstep: same blocks in, same
  // commits out (the installed delivered marks prevent re-delivery).
  for (std::size_t i = split; i < load.blocks.size(); ++i) {
    const BlockPtr& block = load.blocks[i];
    apply_commits(kv, source->on_block(block, block->author(), 0));
    apply_commits(target_kv, target->on_block(block, block->author(), 0));
  }
  EXPECT_EQ(decided_fingerprint(target->committer().decided_sequence()),
            decided_fingerprint(source->committer().decided_sequence()));
  EXPECT_EQ(target_kv.state_digest(), kv.state_digest());
}

TEST(Checkpoint, FetchBelowHorizonTriggersTheCatchupHandshake) {
  Workload load(40);
  auto ahead = load.make_core(kGcDepth);
  for (const BlockPtr& block : load.blocks) {
    ahead->on_block(block, block->author(), 0);
  }
  const Round horizon = ahead->dag().pruned_below();
  ASSERT_GT(horizon, 1u);

  // A late validator's ancestry fetch walk has descended to the peer's
  // horizon: a full round parks (so f+1 distinct authors corroborate the
  // cluster being there) and the parents it now needs sit BELOW the horizon,
  // which no caught-up peer still holds. Every fetch went to peer 3.
  auto late = load.make_core(kGcDepth);
  bool fetched = false;
  for (ValidatorId v = 0; v < 4; ++v) {
    const BlockPtr block = load.builder.dag().slot(horizon, v).front();
    fetched |= !late->on_block(block, /*from=*/3, 0).fetch_requests.empty();
  }
  ASSERT_TRUE(fetched);

  // The ahead peer cannot serve sub-horizon refs; it answers with a horizon
  // notice instead of silence.
  std::vector<BlockRef> below;
  for (Round r = 1; r < horizon && below.size() < 3; ++r) {
    below.push_back(load.builder.dag().slot(r, 0).front()->ref());
  }
  Actions reply = ahead->on_fetch_request(below, /*from=*/3, 0);
  ASSERT_EQ(reply.horizon_notices.size(), 1u);
  EXPECT_EQ(reply.horizon_notices[0].peer, 3u);
  EXPECT_EQ(reply.horizon_notices[0].horizon, horizon);

  // A notice from a peer we never fetched from refuses nothing: it must not
  // talk us into requesting ITS snapshot.
  EXPECT_TRUE(late->on_peer_horizon(2, horizon, millis(9)).checkpoint_requests.empty())
      << "only the refusing peer's notice may trigger a request";

  // The refusing peer's notice makes the stuck validator request a snapshot
  // — once per cooldown window, not per notice.
  Actions request = late->on_peer_horizon(3, horizon, millis(10));
  ASSERT_EQ(request.checkpoint_requests.size(), 1u);
  EXPECT_EQ(request.checkpoint_requests[0], 3u);
  EXPECT_TRUE(late->on_peer_horizon(3, horizon, millis(11)).checkpoint_requests.empty())
      << "cooldown must rate-limit repeat requests";

  // A fabricated horizon is clamped to what f+1 distinct authors
  // corroborate: a core that has seen only ONE author's blocks ignores even
  // an enormous claim from the very peer it fetched from.
  auto lone = load.make_core(kGcDepth);
  lone->on_block(load.builder.dag().slot(horizon, 0).front(), /*from=*/3, 0);
  EXPECT_TRUE(lone->on_peer_horizon(3, Round{1} << 40, millis(10))
                  .checkpoint_requests.empty())
      << "an uncorroborated horizon claim must be distrusted";

  // A validator that is NOT stuck (nothing outstanding below the horizon)
  // never requests a snapshot.
  auto fresh = load.make_core(kGcDepth);
  EXPECT_TRUE(fresh->on_peer_horizon(3, horizon, 0).checkpoint_requests.empty());

  // Install closes the loop: the late validator lands on the peer's state.
  CheckpointData data = ahead->capture_checkpoint();
  late->install_checkpoint(data, millis(20));
  EXPECT_EQ(late->committer().next_pending_slot(),
            ahead->committer().next_pending_slot());
}

// --- The crash/recovery property ---------------------------------------------

TEST(CheckpointProperty, RandomKillPointsRecoverIdenticallyToFullReplay) {
  Workload load(60);
  Rng rng(20260726);
  for (int trial = 0; trial < static_cast<int>(property_iters(10)); ++trial) {
    const std::string label = "trial " + std::to_string(trial);
    const std::string mono_path =
        (fs::path(fresh_dir("prop_mono_" + std::to_string(trial))) / "log.wal")
            .string();
    const std::string seg_dir = fresh_dir("prop_seg_" + std::to_string(trial));

    // Kill point: anywhere past the first few steps, including immediately
    // after a segment roll / checkpoint cut.
    const std::size_t steps =
        8 + static_cast<std::size_t>(rng.uniform(load.blocks.size() - 8));
    const DriveResult writer = drive(load, steps, mono_path, seg_dir);

    // Torn final write: remove the same few trailing bytes from both
    // layouts (their byte streams share the final record). Skipped when the
    // active segment is empty — a crash right after a roll tears nothing.
    if (rng.uniform(2) == 0) {
      const auto indexes = SegmentedWal::list_segments(seg_dir);
      ASSERT_FALSE(indexes.empty()) << label;
      const std::string active =
          SegmentedWal::segment_path(seg_dir, indexes.back());
      const std::uint64_t delta = 1 + rng.uniform(12);
      if (fs::file_size(active) >= delta) {
        fs::resize_file(active, fs::file_size(active) - delta);
        fs::resize_file(mono_path, fs::file_size(mono_path) - delta);
      }
    }

    // Mid-checkpoint kill: tear the newest checkpoint file; recovery must
    // fall back to the previous cut (whose covering segments still exist —
    // retirement lags one checkpoint).
    if (writer.checkpoints > 0 && rng.uniform(3) == 0) {
      const auto sequences = CheckpointStore::list(seg_dir);
      ASSERT_FALSE(sequences.empty()) << label;
      const std::string newest =
          CheckpointStore::checkpoint_path(seg_dir, sequences.back());
      fs::resize_file(newest, fs::file_size(newest) / 2);
    }

    const DriveResult full = recover_monolithic(load, mono_path);
    const DriveResult fast = recover_checkpointed(load, seg_dir);
    expect_equivalent(full, fast, label);

    // And both recoveries continue identically on live input.
    auto continue_feed = [&](const DriveResult& r) {
      app::KvStore kv = r.kv;
      for (std::size_t i = 0; i < load.blocks.size(); ++i) {
        const BlockPtr& block = load.blocks[i];
        apply_commits(kv, r.core->on_block(block, block->author(), 0));
      }
      return kv.state_digest();
    };
    EXPECT_EQ(continue_feed(full), continue_feed(fast)) << label;
  }
}

// --- The delta-chain crash/recovery property ---------------------------------
//
// For any kill point, any chain length bound 0..4, a torn delta tail and a
// torn newest base, recovery from the base+delta chain + segment suffix is
// byte-identical (decided log + app state digest) to BOTH full monolithic
// replay AND recovery from the monolithic every-cut-is-a-base layout.
TEST(CheckpointProperty, DeltaChainsRecoverIdenticallyToFullReplayAndMonolithic) {
  Workload load(60);
  Rng rng(20260808);
  for (int trial = 0; trial < static_cast<int>(property_iters(8)); ++trial) {
    const std::string tag = std::to_string(trial);
    const std::string label = "trial " + tag;
    const std::string mono_path =
        (fs::path(fresh_dir("chain_mono_" + tag)) / "log.wal").string();
    const std::string spare_path =
        (fs::path(fresh_dir("chain_spare_" + tag)) / "log.wal").string();
    const std::string chain_dir = fresh_dir("chain_seg_" + tag);
    const std::string flat_dir = fresh_dir("chain_flat_" + tag);

    const std::size_t max_deltas = static_cast<std::size_t>(rng.uniform(5));
    const std::size_t steps =
        8 + static_cast<std::size_t>(rng.uniform(load.blocks.size() - 8));
    const ChainDriveResult chained =
        drive_chain(load, steps, mono_path, chain_dir, max_deltas);
    const ChainDriveResult flat = drive_chain(load, steps, spare_path, flat_dir, 0);
    ASSERT_EQ(chained.checkpoints, flat.checkpoints) << label;
    if (max_deltas > 0 && chained.checkpoints > 1) {
      EXPECT_GT(chained.delta_cuts, 0u) << label;
    }

    // Torn final WAL write: both segmented layouts share the monolithic byte
    // stream, so the same few trailing bytes tear off each active segment.
    if (rng.uniform(2) == 0) {
      const std::uint64_t cut_bytes = 1 + rng.uniform(12);
      fs::resize_file(mono_path, fs::file_size(mono_path) - cut_bytes);
      for (const std::string& dir : {chain_dir, flat_dir}) {
        const auto indexes = SegmentedWal::list_segments(dir);
        ASSERT_FALSE(indexes.empty()) << label;
        const std::string active = SegmentedWal::segment_path(dir, indexes.back());
        if (fs::file_size(active) >= cut_bytes) {
          fs::resize_file(active, fs::file_size(active) - cut_bytes);
        }
      }
    }

    // Torn newest DELTA link: the chain truncates there and recovery falls
    // back to a shorter chain plus more replay, never to divergence.
    if (chained.delta_cuts > 0 && rng.uniform(2) == 0) {
      std::uint64_t newest_delta = 0;
      for (std::uint64_t seq = 1; seq <= chained.checkpoints; ++seq) {
        if (fs::exists(CheckpointStore::delta_path(chain_dir, seq))) {
          newest_delta = seq;
        }
      }
      ASSERT_GT(newest_delta, 0u) << label;
      const std::string path = CheckpointStore::delta_path(chain_dir, newest_delta);
      fs::resize_file(path, fs::file_size(path) / 2);
    }

    // Torn newest BASE: recovery falls back to the previous chain, whose
    // covering segments still exist (retirement lags one chain).
    if (chained.checkpoints > 0 && rng.uniform(3) == 0) {
      for (const std::string& dir : {chain_dir, flat_dir}) {
        const auto bases = CheckpointStore::list(dir);
        ASSERT_FALSE(bases.empty()) << label;
        const std::string newest = CheckpointStore::checkpoint_path(dir, bases.back());
        fs::resize_file(newest, fs::file_size(newest) / 2);
      }
    }

    const DriveResult full = recover_monolithic(load, mono_path);
    const ChainDriveResult from_chain = recover_chain(load, chain_dir);
    const ChainDriveResult from_flat = recover_chain(load, flat_dir);
    expect_equivalent(full, from_chain, label + " chain vs full replay");
    expect_equivalent(from_flat, from_chain, label + " chain vs monolithic");

    // And all three recoveries continue identically on live input.
    const auto continue_feed = [&](ValidatorCore& core, app::KvStore kv) {
      for (const BlockPtr& block : load.blocks) {
        apply_commits(kv, core.on_block(block, block->author(), 0));
      }
      return kv.state_digest();
    };
    const Digest after_full = continue_feed(*full.core, full.kv);
    EXPECT_EQ(after_full, continue_feed(*from_chain.core, from_chain.kv)) << label;
    EXPECT_EQ(after_full, continue_feed(*from_flat.core, from_flat.kv)) << label;
  }
}

// --- Chain-atomic retirement -------------------------------------------------

TEST(Checkpoint, RetireDropsWholeChainsAndSurvivesMidRetireCrash) {
  Workload load(60);
  const std::string mono_path =
      (fs::path(fresh_dir("retire_chain_mono")) / "log.wal").string();
  const std::string dir = fresh_dir("retire_chain");
  const ChainDriveResult writer = drive_chain(load, load.blocks.size(), mono_path,
                                              dir, 2, /*retire_keep=*/0);
  CheckpointStore store(dir);
  const auto bases = CheckpointStore::list(dir);
  ASSERT_GE(bases.size(), 2u) << "need several chains to retire";
  ASSERT_GT(writer.delta_cuts, 0u);
  const auto newest = store.load_newest_valid();
  ASSERT_TRUE(newest.has_value());

  // Crash-between-unlink-and-manifest model: replaying retire()'s unlink
  // order (a retired chain's delta links strictly before its base, newest
  // chain first) one file at a time, the newest surviving chain must stay
  // loadable at EVERY intermediate crash point — a base whose delta tail is
  // gone is a valid one-link chain, and no live delta ever outlives its base.
  const std::uint64_t keep_from = bases[bases.size() - 2];
  std::vector<std::string> unlink_order;
  for (std::uint64_t seq = writer.checkpoints; seq >= 1; --seq) {
    const std::string path = CheckpointStore::delta_path(dir, seq);
    if (seq < keep_from && fs::exists(path)) unlink_order.push_back(path);
  }
  for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
    if (*it < keep_from) {
      unlink_order.push_back(CheckpointStore::checkpoint_path(dir, *it));
    }
  }
  ASSERT_FALSE(unlink_order.empty());
  for (const std::string& path : unlink_order) {
    fs::remove(path);
    const auto loaded = store.load_newest_valid();
    ASSERT_TRUE(loaded.has_value()) << path;
    EXPECT_EQ(loaded->sequence, newest->sequence) << path;
    EXPECT_EQ(loaded->app_digest, newest->app_digest) << path;
  }

  // The completed retirement keeps exactly the two newest chains: every
  // surviving delta link rides a surviving base.
  store.retire(2);
  EXPECT_EQ(CheckpointStore::list(dir).size(), 2u);
  const std::uint64_t oldest_kept = CheckpointStore::list(dir).front();
  for (std::uint64_t seq = 1; seq <= writer.checkpoints; ++seq) {
    if (fs::exists(CheckpointStore::delta_path(dir, seq))) {
      EXPECT_GT(seq, oldest_kept) << "delta " << seq << " outlived its base";
    }
  }
  EXPECT_EQ(store.load_newest_valid()->sequence, newest->sequence);
}

// --- Threshold-certified cuts ------------------------------------------------

const CommitterOptions kShape = observer_config(kGcDepth).committer;

// Mirrors the runtime's canonical-cut protocol (NodeRuntime::start_cut):
// before handing each committed sub-DAG to the app, cut at every boundary
// B_k = cut_boundary_slot(k, interval) the watermark crossed, truncating the
// capture back to the boundary. Every validator reaching B_k then cuts the
// SAME decided log and app state — what the certificate payload signs.
struct CanonicalCutter {
  struct Cut {
    CheckpointData data;
    std::uint64_t cut_index = 0;
    Bytes app_delta;  // touched-key window since the previous cut
  };

  explicit CanonicalCutter(const Workload& load, Round interval)
      : interval_(interval), core_(load.make_core(kGcDepth)) {}

  SlotId boundary() const { return cut_boundary_slot(next_k_, interval_, kShape); }

  void feed(const BlockPtr& block) {
    Actions actions = core_->on_block(block, block->author(), 0);
    for (const auto& sub : actions.committed) {
      cross(sub.slot, actions);
      for (const auto& b : sub.blocks) {
        kv_.apply(app::KvCommand::put(b->digest().hex(), std::to_string(b->round())));
      }
    }
    cross(core_->committer().next_pending_slot(), actions);
  }

  ValidatorCore& core() { return *core_; }
  std::vector<Cut> cuts;

 private:
  void cross(SlotId watermark, const Actions& actions) {
    while (!(watermark < boundary())) {
      const SlotId b = boundary();
      CheckpointData data = core_->capture_checkpoint();
      if (data.horizon <= b.round) {
        std::vector<Digest> delivered_after;
        for (const auto& sub : actions.committed) {
          if (sub.slot < b) continue;
          for (const auto& blk : sub.blocks) delivered_after.push_back(blk->digest());
        }
        truncate_checkpoint(data, b, delivered_after);
        data.sequence = ++sequence_;
        data.app_state = kv_.snapshot_bytes();
        data.app_digest = kv_.state_digest();
        Bytes app_delta = kv_.delta_bytes();
        kv_.clear_delta_window();
        cuts.push_back({std::move(data), next_k_, std::move(app_delta)});
      }
      ++next_k_;
    }
  }

  Round interval_;
  std::unique_ptr<ValidatorCore> core_;
  app::KvStore kv_;
  std::uint64_t next_k_ = 1;
  std::uint64_t sequence_ = 0;
};

CutPayload payload_for(const CanonicalCutter::Cut& cut) {
  CutPayload payload;
  payload.cut_index = cut.cut_index;
  payload.head = cut.data.head;
  DecidedLogHasher hasher;
  hasher.fold(cut.data.decided.begin(), cut.data.decided.end());
  payload.decided_digest = hasher.digest();
  payload.app_digest = cut.data.app_digest;
  return payload;
}

Bytes certify(const Workload& load, const CutPayload& payload,
              std::initializer_list<ValidatorId> signers) {
  crypto::MultisigCollector collector(load.setup.committee.quorum_threshold());
  for (ValidatorId v : signers) {
    const CutShare share = sign_cut(payload, v, load.setup.keypairs[v].private_key);
    EXPECT_TRUE(verify_cut_share(share, load.setup.committee));
    collector.add(share.author, share.signature);
  }
  EXPECT_TRUE(collector.complete());
  return encode_checkpoint_certificate({payload, collector.certificate()});
}

TEST(CheckpointCert, ForgedAndDuplicatedSharesNeverAggregate) {
  Workload load(40);
  CanonicalCutter cutter(load, 6);
  for (const BlockPtr& block : load.blocks) cutter.feed(block);
  ASSERT_FALSE(cutter.cuts.empty());
  const CutPayload payload = payload_for(cutter.cuts.front());

  // A share signed with the wrong key — or a share whose payload was
  // tampered after signing — is rejected by share verification.
  const CutShare forged =
      sign_cut(payload, /*author=*/0, load.setup.keypairs[1].private_key);
  EXPECT_FALSE(verify_cut_share(forged, load.setup.committee));
  CutShare tampered = sign_cut(payload, 0, load.setup.keypairs[0].private_key);
  tampered.payload.app_digest.bytes[0] ^= 0x01;
  EXPECT_FALSE(verify_cut_share(tampered, load.setup.committee));
  CutShare out_of_range = sign_cut(payload, 9, load.setup.keypairs[0].private_key);
  EXPECT_FALSE(verify_cut_share(out_of_range, load.setup.committee));

  // Duplicated shares never double-count: the same signer adding twice makes
  // no progress toward the 2f+1 threshold, and fewer than 2f+1 distinct
  // signers never completes the collector.
  crypto::MultisigCollector collector(load.setup.committee.quorum_threshold());
  const CutShare s0 = sign_cut(payload, 0, load.setup.keypairs[0].private_key);
  const CutShare s1 = sign_cut(payload, 1, load.setup.keypairs[1].private_key);
  EXPECT_FALSE(collector.add(s0.author, s0.signature));
  EXPECT_FALSE(collector.add(s0.author, s0.signature));  // duplicate: no progress
  EXPECT_EQ(collector.count(), 1u);
  EXPECT_FALSE(collector.add(s1.author, s1.signature));
  EXPECT_EQ(collector.count(), 2u);
  EXPECT_FALSE(collector.complete()) << "2 of 4 must stay below quorum";

  // An under-quorum aggregate that claims to be a certificate is refused.
  crypto::MultisigCollector under(2);
  under.add(s0.author, s0.signature);
  under.add(s1.author, s1.signature);
  ASSERT_TRUE(under.complete());
  EXPECT_NE(verify_checkpoint_certificate({payload, under.certificate()},
                                          load.setup.committee),
            "");

  // The third distinct signer completes it and the aggregate verifies.
  const CutShare s2 = sign_cut(payload, 2, load.setup.keypairs[2].private_key);
  EXPECT_TRUE(collector.add(s2.author, s2.signature));
  EXPECT_EQ(verify_checkpoint_certificate({payload, collector.certificate()},
                                          load.setup.committee),
            "");
}

TEST(CheckpointCert, CertifiedChainAcceptsAndMismatchedContentRefuses) {
  Workload load(40);
  constexpr Round kInterval = 6;
  CanonicalCutter cutter(load, kInterval);
  for (const BlockPtr& block : load.blocks) cutter.feed(block);
  ASSERT_GE(cutter.cuts.size(), 2u) << "need a base and at least one delta cut";

  // Base + delta chain over consecutive canonical cuts, every link certified
  // by a 2f+1 quorum.
  const auto& base = cutter.cuts[cutter.cuts.size() - 2];
  const auto& tip = cutter.cuts[cutter.cuts.size() - 1];
  const Bytes base_record = encode_checkpoint(base.data);
  const Bytes delta_record = encode_checkpoint_delta(make_checkpoint_delta(
      base.data, tip.data, base.data.sequence, tip.app_delta));
  const Bytes base_cert = certify(load, payload_for(base), {0, 1, 2});
  const Bytes tip_cert = certify(load, payload_for(tip), {1, 2, 3});

  // Round-trips through the wire codec: what a kCheckpointChain frame carries.
  const auto frame_of = [](const std::vector<std::pair<const Bytes*, const Bytes*>>&
                               links) {
    std::vector<std::pair<BytesView, BytesView>> views;
    for (const auto& [record, cert] : links) {
      views.emplace_back(BytesView{record->data(), record->size()},
                         cert != nullptr ? BytesView{cert->data(), cert->size()}
                                         : BytesView{});
    }
    const Bytes encoded = encode_checkpoint_chain_frame(views);
    return decode_checkpoint_chain_frame({encoded.data(), encoded.size()});
  };

  ValidationOptions validation;
  validation.verify_signature = false;
  validation.verify_coin_share = false;

  const ChainVerifyResult good = verify_checkpoint_chain(
      frame_of({{&base_record, &base_cert}, {&delta_record, &tip_cert}}),
      load.setup.committee, kShape, kInterval, validation);
  EXPECT_EQ(good.error, "");
  EXPECT_TRUE(good.certified);
  EXPECT_EQ(good.links, 2u);
  EXPECT_EQ(good.data.head, tip.data.head);
  EXPECT_EQ(good.data.app_digest, tip.data.app_digest);
  EXPECT_EQ(app::KvStore::restore({good.data.app_state.data(),
                                   good.data.app_state.size()})
                .state_digest(),
            tip.data.app_digest)
      << "base + delta replay must reconstruct the tip's app state";

  // A link without a certificate is accepted but the chain degrades to the
  // legacy (uncertified) trust path.
  const ChainVerifyResult legacy = verify_checkpoint_chain(
      frame_of({{&base_record, &base_cert}, {&delta_record, nullptr}}),
      load.setup.committee, kShape, kInterval, validation);
  EXPECT_EQ(legacy.error, "");
  EXPECT_FALSE(legacy.certified);

  // A certificate that is VALID crypto over content that does not match its
  // link refuses the whole chain — never a downgrade to uncertified.
  CutPayload lying = payload_for(tip);
  lying.app_digest.bytes[0] ^= 0x01;
  const Bytes lying_cert = certify(load, lying, {0, 1, 3});
  const ChainVerifyResult mismatched = verify_checkpoint_chain(
      frame_of({{&base_record, &base_cert}, {&delta_record, &lying_cert}}),
      load.setup.committee, kShape, kInterval, validation);
  EXPECT_NE(mismatched.error, "");
  EXPECT_FALSE(mismatched.certified);

  // So does a certificate claiming the wrong boundary index for its head.
  CutPayload wrong_index = payload_for(tip);
  wrong_index.cut_index += 1;
  const Bytes wrong_index_cert = certify(load, wrong_index, {0, 1, 2});
  const ChainVerifyResult misindexed = verify_checkpoint_chain(
      frame_of({{&base_record, &base_cert}, {&delta_record, &wrong_index_cert}}),
      load.setup.committee, kShape, kInterval, validation);
  EXPECT_NE(misindexed.error, "");
}

}  // namespace
}  // namespace mahimahi
