// Property tests for the committer: the Appendix C safety and liveness
// claims, checked over randomized DAGs and divergent local views.
//
//  * Prefix consistency (Lemmas 5-7, Theorem 1): validators with different
//    ancestry-closed views of the same global DAG deliver prefix-consistent
//    block sequences and agree on every decided slot.
//  * Integrity (Theorem 2): no block is delivered twice.
//  * At most one equivocation per slot commits (Lemma 2).
//  * Eventual decision in the random network model (Lemmas 13/14, 16/18/19).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "common/env.h"
#include "core/commit_scanner.h"
#include "core/committer.h"
#include "sim/dag_builder.h"

namespace mahimahi {
namespace {

enum class NetModel { kRandom, kAdversarial };

struct ModelParams {
  std::uint32_t n = 4;
  std::uint32_t wave_length = 5;
  std::uint32_t leaders = 2;
  NetModel net = NetModel::kRandom;
  std::uint32_t crashed = 0;           // validators n-1, n-2, ... are crashed
  bool equivocator = false;            // validator 0 equivocates every round
  Round rounds = 24;

  std::string label() const {
    std::string out = "n" + std::to_string(n) + "_w" + std::to_string(wave_length) +
                      "_l" + std::to_string(leaders);
    out += net == NetModel::kRandom ? "_rand" : "_adv";
    if (crashed > 0) out += "_crash" + std::to_string(crashed);
    if (equivocator) out += "_equiv";
    return out;
  }
};

// Builds a global DAG under the given model. Returns the builder (which owns
// the committee and the full DAG).
std::unique_ptr<DagBuilder> build_global_dag(const ModelParams& params,
                                             std::uint64_t seed) {
  auto builder = std::make_unique<DagBuilder>(params.n, /*committee seed=*/7);
  Rng rng(seed);
  const CommitterOptions options{.wave_length = params.wave_length,
                                 .leaders_per_round = params.leaders};

  std::vector<ValidatorId> alive;
  for (ValidatorId v = 0; v < params.n; ++v) {
    if (v >= params.n - params.crashed) continue;
    alive.push_back(v);
  }

  for (Round r = 1; r <= params.rounds; ++r) {
    Dag& dag = builder->dag();
    // Previous-round authors with at least one block.
    std::vector<ValidatorId> previous;
    for (ValidatorId a = 0; a < params.n; ++a) {
      if (!dag.slot(r - 1, a).empty()) previous.push_back(a);
    }

    // The adversary tries to suppress the current leaders' previous-round
    // blocks (the leader-delay attack the after-the-fact election defeats).
    std::set<ValidatorId> suppressed;
    if (params.net == NetModel::kAdversarial && r >= 2) {
      for (std::uint32_t offset = 0; offset < params.leaders; ++offset) {
        suppressed.insert(builder->leader_of({r - 1, offset}, options));
      }
    }

    for (const ValidatorId author : alive) {
      // Choose 2f+1 distinct previous-round authors.
      std::vector<ValidatorId> preferred, fallback;
      for (const ValidatorId p : previous) {
        (suppressed.contains(p) ? fallback : preferred).push_back(p);
      }
      std::shuffle(preferred.begin(), preferred.end(), rng);
      std::shuffle(fallback.begin(), fallback.end(), rng);
      std::vector<ValidatorId> chosen;
      for (const ValidatorId p : preferred) {
        if (chosen.size() < builder->quorum()) chosen.push_back(p);
      }
      for (const ValidatorId p : fallback) {
        if (chosen.size() < builder->quorum()) chosen.push_back(p);
      }
      EXPECT_GE(chosen.size(), builder->quorum()) << "model cannot form a quorum";

      std::vector<BlockRef> refs;
      for (const ValidatorId p : chosen) {
        const auto& cell = dag.slot(r - 1, p);
        // Under equivocation, pick one of the equivocating blocks at random.
        refs.push_back(cell[rng.uniform(cell.size())]->ref());
      }
      // Also reference own previous block when not already chosen.
      if (!dag.slot(r - 1, author).empty() &&
          std::find(chosen.begin(), chosen.end(), author) == chosen.end()) {
        refs.push_back(dag.slot(r - 1, author).front()->ref());
      }
      builder->add_block(author, r, refs);

      if (params.equivocator && author == 0) {
        TxBatch marker;
        marker.id = 0xb0b0'0000 + r;
        builder->add_block(author, r, refs, {marker});
      }
    }
  }
  return builder;
}

// An ancestry-closed local view: all blocks up to `horizon`, plus a random
// subset of blocks at horizon+1 (their parents are all <= horizon).
Dag make_view(const DagBuilder& global, Round horizon, double tip_probability,
              Rng& rng) {
  Dag view(global.committee());
  const Dag& full = global.dag();
  for (Round r = 1; r <= horizon + 1; ++r) {
    for (const auto& block : full.blocks_at(r)) {
      if (r == horizon + 1 && rng.uniform_double() >= tip_probability) continue;
      view.insert(block);
    }
  }
  return view;
}

std::vector<BlockRef> delivered_sequence(const Dag& view, const Committee& committee,
                                         const CommitterOptions& options) {
  Committer committer(view, committee, options);
  std::vector<BlockRef> out;
  for (const auto& sub_dag : committer.try_commit()) {
    for (const auto& block : sub_dag.blocks) out.push_back(block->ref());
  }
  return out;
}

class CommitterProperty : public ::testing::TestWithParam<ModelParams> {};

TEST_P(CommitterProperty, ViewsDeliverPrefixConsistentSequences) {
  const ModelParams params = GetParam();
  const CommitterOptions options{.wave_length = params.wave_length,
                                 .leaders_per_round = params.leaders};

  for (std::uint64_t seed = 1; seed <= property_iters(3); ++seed) {
    const auto global = build_global_dag(params, seed);
    if (::testing::Test::HasFatalFailure()) return;
    Rng rng(seed * 1000 + 17);

    // A spread of views: short horizons, ragged tips, and the full DAG.
    std::vector<std::vector<BlockRef>> sequences;
    for (const Round lag : {Round{0}, Round{2}, Round{5}, Round{9}}) {
      const Round horizon = params.rounds > lag ? params.rounds - lag : 1;
      const Dag view = make_view(*global, horizon, 0.5, rng);
      sequences.push_back(delivered_sequence(view, global->committee(), options));
    }

    // The full view must have delivered something by 24 rounds.
    EXPECT_FALSE(sequences.front().empty()) << params.label() << " seed " << seed;

    // Pairwise prefix consistency (Total Order across views).
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      for (std::size_t j = i + 1; j < sequences.size(); ++j) {
        const auto& a = sequences[i];
        const auto& b = sequences[j];
        const std::size_t common = std::min(a.size(), b.size());
        for (std::size_t k = 0; k < common; ++k) {
          ASSERT_EQ(a[k], b[k]) << params.label() << " seed " << seed << " views "
                                << i << "/" << j << " diverge at " << k;
        }
      }
    }
  }
}

TEST_P(CommitterProperty, DecidedSlotsAgreeAcrossViews) {
  const ModelParams params = GetParam();
  const CommitterOptions options{.wave_length = params.wave_length,
                                 .leaders_per_round = params.leaders};

  const auto global = build_global_dag(params, 99);
  if (::testing::Test::HasFatalFailure()) return;
  Rng rng(4242);

  std::map<SlotId, std::pair<SlotDecision::Kind, std::optional<Digest>>> agreed;
  for (const Round lag : {Round{0}, Round{3}, Round{7}}) {
    const Round horizon = params.rounds > lag ? params.rounds - lag : 1;
    const Dag view = make_view(*global, horizon, 0.3, rng);
    Committer committer(view, global->committee(), options);
    committer.try_commit();
    for (const auto& decision : committer.decided_sequence()) {
      const auto entry = std::make_pair(
          decision.kind, decision.block ? std::optional<Digest>(decision.block->digest())
                                        : std::nullopt);
      const auto [it, inserted] = agreed.emplace(decision.slot, entry);
      if (!inserted) {
        EXPECT_EQ(it->second.first, entry.first)
            << params.label() << " slot " << decision.slot.to_string();
        EXPECT_EQ(it->second.second, entry.second)
            << params.label() << " slot " << decision.slot.to_string();
      }
    }
  }
}

TEST_P(CommitterProperty, NoBlockDeliveredTwice) {
  const ModelParams params = GetParam();
  const CommitterOptions options{.wave_length = params.wave_length,
                                 .leaders_per_round = params.leaders};
  const auto global = build_global_dag(params, 5);
  if (::testing::Test::HasFatalFailure()) return;

  Committer committer(global->dag(), global->committee(), options);
  std::set<Digest> delivered;
  for (const auto& sub_dag : committer.try_commit()) {
    for (const auto& block : sub_dag.blocks) {
      EXPECT_TRUE(delivered.insert(block->digest()).second)
          << params.label() << ": " << block->ref().to_string();
    }
  }
}

TEST_P(CommitterProperty, AtMostOneCommitPerSlot) {
  const ModelParams params = GetParam();
  const CommitterOptions options{.wave_length = params.wave_length,
                                 .leaders_per_round = params.leaders};
  const auto global = build_global_dag(params, 31);
  if (::testing::Test::HasFatalFailure()) return;

  Committer committer(global->dag(), global->committee(), options);
  committer.try_commit();
  std::set<SlotId> seen;
  for (const auto& decision : committer.decided_sequence()) {
    EXPECT_TRUE(seen.insert(decision.slot).second)
        << "slot decided twice: " << decision.slot.to_string();
  }
}

// Serial try_commit() and the off-loop split (CommitScanner replica scan on
// one side, Committer::apply on the other) must produce byte-identical
// committed sub-DAG sequences — over randomized causal insertion orders,
// randomized batch boundaries, and randomized scan lag (the scanner skips
// scans, so its replica evaluates against a different DAG growth history
// than the serial committer ever saw).
TEST_P(CommitterProperty, SplitEvaluationMatchesSerial) {
  const ModelParams params = GetParam();
  const CommitterOptions options{.wave_length = params.wave_length,
                                 .leaders_per_round = params.leaders};

  for (std::uint64_t seed = 1; seed <= property_iters(3); ++seed) {
    const auto global = build_global_dag(params, seed * 7 + 1);
    if (::testing::Test::HasFatalFailure()) return;
    Rng rng(seed * 131 + 5);

    // A causal insertion stream: rounds ascending (every parent precedes its
    // children), random order within a round.
    std::vector<BlockPtr> stream;
    for (Round r = 1; r <= params.rounds; ++r) {
      auto blocks = global->dag().blocks_at(r);
      std::shuffle(blocks.begin(), blocks.end(), rng);
      stream.insert(stream.end(), blocks.begin(), blocks.end());
    }

    Dag serial_dag(global->committee());
    Committer serial(serial_dag, global->committee(), options);
    Dag live(global->committee());
    Committer core(live, global->committee(), options);
    CommitScanner scanner(live, core.next_pending_slot(), global->committee(),
                          options);

    std::vector<BlockRef> serial_seq, split_seq;
    const auto collect = [](std::vector<BlockRef>& out,
                            const std::vector<CommittedSubDag>& sub_dags) {
      for (const auto& sub_dag : sub_dags) {
        for (const auto& block : sub_dag.blocks) out.push_back(block->ref());
      }
    };

    std::size_t i = 0;
    while (i < stream.size()) {
      const std::size_t take = 1 + rng.uniform(8);
      std::vector<BlockPtr> batch;
      for (; i < stream.size() && batch.size() < take; ++i) {
        batch.push_back(stream[i]);
      }
      for (const auto& block : batch) {
        serial_dag.insert(block);
        live.insert(block);
      }
      collect(serial_seq, serial.try_commit());  // serial evaluates every batch
      scanner.ingest(batch);
      if (rng.uniform(3) != 0) {  // the off-loop scan randomly lags behind
        collect(split_seq, core.apply(scanner.scan()));
      }
    }
    collect(split_seq, core.apply(scanner.scan()));  // flush the lag

    ASSERT_EQ(serial_seq.size(), split_seq.size())
        << params.label() << " seed " << seed;
    for (std::size_t k = 0; k < serial_seq.size(); ++k) {
      ASSERT_EQ(serial_seq[k], split_seq[k])
          << params.label() << " seed " << seed << " diverges at " << k;
    }

    // The decided logs agree slot by slot, outcome and all.
    const auto& serial_log = serial.decided_sequence();
    const auto& split_log = core.decided_sequence();
    ASSERT_EQ(serial_log.size(), split_log.size()) << params.label();
    for (std::size_t k = 0; k < serial_log.size(); ++k) {
      EXPECT_TRUE(same_outcome(serial_log[k], split_log[k]))
          << params.label() << " slot " << serial_log[k].to_string() << " vs "
          << split_log[k].to_string();
    }
    EXPECT_EQ(serial.next_pending_slot(), core.next_pending_slot());
    EXPECT_EQ(core.next_pending_slot(), scanner.next_pending_slot());
  }
}

TEST_P(CommitterProperty, SlotsEventuallyDecide) {
  const ModelParams params = GetParam();
  if (params.net == NetModel::kAdversarial && params.wave_length < 4) return;
  const CommitterOptions options{.wave_length = params.wave_length,
                                 .leaders_per_round = params.leaders};
  const auto global = build_global_dag(params, 77);
  if (::testing::Test::HasFatalFailure()) return;

  Committer committer(global->dag(), global->committee(), options);
  committer.try_commit();
  // Everything older than ~3 waves behind the tip must be decided (the tail
  // cannot: its certify rounds do not exist yet).
  const Round expected_decided = params.rounds - 3 * params.wave_length;
  EXPECT_GT(committer.next_pending_slot().round, expected_decided) << params.label();
}

INSTANTIATE_TEST_SUITE_P(
    Models, CommitterProperty,
    ::testing::Values(
        ModelParams{.n = 4, .wave_length = 5, .leaders = 2, .net = NetModel::kRandom},
        ModelParams{.n = 4, .wave_length = 4, .leaders = 2, .net = NetModel::kRandom},
        ModelParams{.n = 4, .wave_length = 5, .leaders = 1, .net = NetModel::kAdversarial},
        ModelParams{.n = 7, .wave_length = 5, .leaders = 3, .net = NetModel::kRandom},
        ModelParams{.n = 7, .wave_length = 4, .leaders = 1, .net = NetModel::kAdversarial},
        ModelParams{.n = 7, .wave_length = 4, .leaders = 2, .net = NetModel::kRandom,
                    .crashed = 2},
        ModelParams{.n = 4, .wave_length = 5, .leaders = 2, .net = NetModel::kRandom,
                    .crashed = 1},
        ModelParams{.n = 4, .wave_length = 5, .leaders = 2, .net = NetModel::kRandom,
                    .equivocator = true},
        ModelParams{.n = 7, .wave_length = 4, .leaders = 2, .net = NetModel::kRandom,
                    .equivocator = true},
        ModelParams{.n = 10, .wave_length = 5, .leaders = 2, .net = NetModel::kRandom},
        ModelParams{.n = 10, .wave_length = 4, .leaders = 3, .net = NetModel::kRandom,
                    .crashed = 3}),
    [](const ::testing::TestParamInfo<ModelParams>& info) { return info.param.label(); });

}  // namespace
}  // namespace mahimahi
