// Networking tests: event loop, TCP framing, and full localhost clusters of
// NodeRuntimes reaching consensus over real sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "net/node_runtime.h"
#include "obs/flight_recorder.h"

namespace mahimahi::net {
namespace {

using namespace std::chrono_literals;

// Polls `predicate` until true or the deadline passes.
bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds deadline = 15000ms) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return predicate();
}

// Blocking one-shot HTTP/1.1 GET against the admin endpoint on loopback.
// Like a real scraper, the client stops once Content-Length bytes of body
// have arrived (the server holds the connection open until the peer closes).
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  std::size_t body_needed = std::string::npos;  // headers + Content-Length body
  for (;;) {
    if (body_needed == std::string::npos) {
      const auto header_end = response.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::size_t content_length = 0;
        const auto field = response.find("Content-Length: ");
        if (field != std::string::npos && field < header_end)
          content_length = std::stoul(response.substr(field + 16));
        body_needed = header_end + 4 + content_length;
      }
    }
    if (body_needed != std::string::npos && response.size() >= body_needed) break;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// Sends an arbitrary byte payload to the admin port and reads whatever comes
// back until the server stops sending (bad-request paths: no Content-Length
// contract to honor).
std::string http_raw(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  std::size_t body_needed = std::string::npos;
  for (;;) {
    if (body_needed == std::string::npos) {
      const auto header_end = response.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::size_t content_length = 0;
        const auto field = response.find("Content-Length: ");
        if (field != std::string::npos && field < header_end)
          content_length = std::stoul(response.substr(field + 16));
        body_needed = header_end + 4 + content_length;
      }
    }
    if (body_needed != std::string::npos && response.size() >= body_needed) break;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(IngestBatchCap, AdaptiveBatchSizing) {
  // No limits configured: unbounded drain.
  EXPECT_GT(ingest_batch_cap(0, 0, 0), 1u << 20);
  // Pure count cap.
  EXPECT_EQ(ingest_batch_cap(64, 0, 0), 64u);
  EXPECT_EQ(ingest_batch_cap(64, millis(2), 0), 64u);  // no cost estimate yet
  // Latency budget shrinks the batch once the per-block cost is known:
  // 2ms budget / 100us per block = 20 blocks.
  EXPECT_EQ(ingest_batch_cap(64, millis(2), 100), 20u);
  // The budget never shrinks the drain below the amortization floor: tiny
  // batches lose the RLC batch-verification amortization, so a cap derived
  // from slow-looking per-block costs must not collapse to 1 and pin the
  // cost there (the bistable trap — see ingest_batch_cap).
  EXPECT_EQ(ingest_batch_cap(64, millis(2), millis(50)), kVerifyAmortizationFloor);
  EXPECT_EQ(ingest_batch_cap(64, millis(2), 400), kVerifyAmortizationFloor);  // 5 < floor
  // The floor yields to the hard count cap when that is smaller...
  EXPECT_EQ(ingest_batch_cap(4, millis(2), millis(50)), 4u);
  // ...and the count cap still binds however cheap blocks are.
  EXPECT_EQ(ingest_batch_cap(64, millis(1000), 1), 64u);
  // Budget-only configuration (max_batch = 0).
  EXPECT_EQ(ingest_batch_cap(0, millis(1), 100), 10u);
}

TEST(EventLoop, PostedTasksRunOnLoopThread) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    loop.post([&counter] { ++counter; });
  }
  EXPECT_TRUE(wait_for([&] { return counter.load() == 100; }));
  loop.stop();
  runner.join();
}

TEST(EventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::mutex mutex;
  std::vector<int> order;
  loop.post([&] {
    loop.schedule(millis(30), [&] {
      std::lock_guard<std::mutex> g(mutex);
      order.push_back(2);
    });
    loop.schedule(millis(10), [&] {
      std::lock_guard<std::mutex> g(mutex);
      order.push_back(1);
    });
  });
  EXPECT_TRUE(wait_for([&] {
    std::lock_guard<std::mutex> g(mutex);
    return order.size() == 2;
  }));
  loop.stop();
  runner.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::atomic<bool> fired{false};
  std::atomic<bool> late_fired{false};
  loop.post([&] {
    const auto id = loop.schedule(millis(20), [&] { fired = true; });
    loop.cancel_timer(id);
    loop.schedule(millis(40), [&] { late_fired = true; });
  });
  EXPECT_TRUE(wait_for([&] { return late_fired.load(); }));
  EXPECT_FALSE(fired.load());
  loop.stop();
  runner.join();
}

TEST(Tcp, EchoRoundTrip) {
  EventLoop loop;
  std::mutex mutex;
  std::vector<Bytes> server_frames, client_frames;
  TcpConnectionPtr server_side;

  TcpListener listener(loop, 0, [&](TcpConnectionPtr connection) {
    server_side = connection;
    connection->start(
        [&, connection](BytesView frame) {
          {
            std::lock_guard<std::mutex> g(mutex);
            server_frames.emplace_back(frame.begin(), frame.end());
          }
          connection->send_frame(frame);  // echo
        },
        [] {});
  });

  std::thread runner([&] { loop.run(); });
  TcpConnectionPtr client;
  std::atomic<bool> connected{false};
  loop.post([&] {
    tcp_connect(loop, "127.0.0.1", listener.port(), [&](TcpConnectionPtr connection) {
      client = connection;
      client->start(
          [&](BytesView frame) {
            std::lock_guard<std::mutex> g(mutex);
            client_frames.emplace_back(frame.begin(), frame.end());
          },
          [] {});
      connected = true;
    });
  });
  ASSERT_TRUE(wait_for([&] { return connected.load(); }));

  const Bytes small = to_bytes("hello consensus");
  Bytes large(300000, 0xcd);  // forces multiple reads/writes
  loop.post([&] {
    client->send_frame({small.data(), small.size()});
    client->send_frame({large.data(), large.size()});
  });

  ASSERT_TRUE(wait_for([&] {
    std::lock_guard<std::mutex> g(mutex);
    return client_frames.size() == 2;
  }));
  std::lock_guard<std::mutex> g(mutex);
  EXPECT_EQ(server_frames[0], small);
  EXPECT_EQ(client_frames[0], small);
  EXPECT_EQ(client_frames[1], large);

  loop.stop();
  runner.join();
}

class TcpClusterTest : public ::testing::Test {
 protected:
  TcpClusterTest() : setup_(Committee::make_test(4)) {}

  std::unique_ptr<NodeRuntime> make_node(ValidatorId v,
                                         const std::string& wal_path = {}) {
    NodeRuntimeConfig config;
    config.validator.id = v;
    config.validator.committer = mahi_mahi_5(1);
    config.validator.committer.gc_depth = gc_depth_;
    config.validator.checkpoint_interval = checkpoint_interval_;
    config.validator.wal_segment_bytes = 64 * 1024;
    config.validator.min_round_delay = min_round_delay_;
    config.peers = addresses_;
    config.tick_interval = millis(10);
    config.wal_path = wal_path;
    config.verify_threads = verify_threads_;
    config.validator.signature_cache = shared_cache_;
    config.validator.parallel_commit = parallel_commit_;
    config.validator.wal_group_commit = wal_group_commit_;
    config.validator.egress_offload = egress_offload_;
    config.admin_port = admin_port_;
    config.loop_stall_budget = loop_stall_budget_;
    config.flightrec_dir = flightrec_dir_;
    return std::make_unique<NodeRuntime>(setup_.committee,
                                         setup_.keypairs[v].private_key, config);
  }

  // Worker-pool ingestion by default; tests may set 0 for the inline path.
  std::size_t verify_threads_ = 2;
  // Checkpoint subsystem knobs (off by default — no behavior change).
  Round gc_depth_ = 0;
  Round checkpoint_interval_ = 0;
  TimeMicros min_round_delay_ = millis(5);
  // Off-loop commit evaluation (scan on the worker pool, apply on the loop).
  bool parallel_commit_ = false;
  // Write-side offload knobs (egress offload is the production default).
  bool wal_group_commit_ = false;
  bool egress_offload_ = true;
  // When set, all runtimes share one verification cache (co-located setup).
  std::shared_ptr<VerifierCache> shared_cache_;
  // Admin/metrics endpoint; -1 = disabled, 0 = ephemeral port.
  int admin_port_ = -1;
  // Flight-recorder knobs: a tiny budget makes every busy tick a "stall",
  // and a dump directory arms the watchdog's auto-dump.
  TimeMicros loop_stall_budget_ = millis(250);
  std::string flightrec_dir_;

  // Builds a 4-node localhost cluster on ephemeral ports. The chosen
  // addresses stay in addresses_, so a node restarted later (make_node)
  // rejoins the same mesh instead of a freshly-probed one.
  std::vector<std::unique_ptr<NodeRuntime>> make_cluster(
      const std::vector<std::string>& wal_paths = {}) {
    // Ports must be known upfront by every node, so pre-claim ephemeral
    // ports via short-lived listeners.
    addresses_.assign(4, {});
    {
      EventLoop probe_loop;
      std::vector<std::unique_ptr<TcpListener>> probes;
      for (int i = 0; i < 4; ++i) {
        probes.push_back(
            std::make_unique<TcpListener>(probe_loop, 0, [](TcpConnectionPtr) {}));
        addresses_[i].port = probes.back()->port();
      }
      // Listeners close here; tiny race window is acceptable for tests.
    }

    std::vector<std::unique_ptr<NodeRuntime>> nodes;
    for (ValidatorId v = 0; v < 4; ++v) {
      nodes.push_back(make_node(v, wal_paths.empty() ? std::string{} : wal_paths[v]));
    }
    return nodes;
  }

  Committee::TestSetup setup_;
  std::vector<NodeAddress> addresses_;
};

TEST_F(TcpClusterTest, FourNodesCommitTransactions) {
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();

  // Submit transactions to every node.
  for (ValidatorId v = 0; v < 4; ++v) {
    TxBatch batch;
    batch.id = 1000 + v;
    batch.count = 25;
    batch.submitted_at = steady_now_micros();
    nodes[v]->submit({batch});
  }

  // All nodes commit all 100 transactions.
  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 100) return false;
    }
    return true;
  })) << "committed: " << nodes[0]->committed_transactions() << ", "
      << nodes[1]->committed_transactions() << ", " << nodes[2]->committed_transactions()
      << ", " << nodes[3]->committed_transactions();

  EXPECT_GT(nodes[0]->highest_round(), 5u);
  for (auto& node : nodes) node->stop();

  // Submission went through the sharded pool's front door without rejects.
  for (const auto& node : nodes) {
    EXPECT_EQ(node->submit_rejected(), 0u);
    EXPECT_GE(node->mempool_stats().accepted, 1u);
  }

  // The worker pool carried the ingestion pipeline: every peer block was
  // decoded and crypto-verified off the loop thread.
  for (const auto& node : nodes) {
    const IngestStats stats = node->ingest_stats();
    EXPECT_GT(stats.preverified, 0u) << "node " << node->id();
    EXPECT_EQ(stats.crypto_rejected, 0u);
    EXPECT_EQ(stats.structurally_rejected, 0u);
    EXPECT_EQ(node->decode_errors(), 0u);
  }
}

TEST_F(TcpClusterTest, AdminEndpointServesMetricsMidRun) {
  admin_port_ = 0;  // ephemeral admin listener on every node
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();

  // Every node published an admin port distinct from its consensus port.
  for (const auto& node : nodes) ASSERT_GT(node->admin_port(), 0);

  for (ValidatorId v = 0; v < 4; ++v) {
    TxBatch batch;
    batch.id = 7000 + v;
    batch.count = 25;
    batch.submitted_at = steady_now_micros();
    nodes[v]->submit({batch});
  }
  ASSERT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 100) return false;
    }
    return true;
  }));

  // Scrape mid-run: consensus keeps ticking while the admin plane serves.
  // One scrape must cover the whole pipeline — ingest, DAG, commit-latency
  // breakdown, finality, WAL, mempool, I/O plane, and the watchdog.
  const std::string text = http_get(nodes[0]->admin_port(), "/metrics");
  ASSERT_NE(text.find("HTTP/1.1 200 OK"), std::string::npos) << text.substr(0, 200);
  EXPECT_NE(text.find("text/plain; version=0.0.4"), std::string::npos);
  for (const char* needle : {
           "mm_committed_transactions_total", "mm_committed_blocks_total",
           "mm_highest_round", "mm_stage_decode_micros_bucket",
           "mm_stage_crypto_verify_micros_bucket", "mm_stage_dag_insert_micros_bucket",
           "mm_stage_commit_wait_micros_bucket", "mm_stage_execute_micros_sum",
           "mm_finality_micros_count", "mm_mempool_accepted_total",
           "mm_io_bytes_sent_total", "mm_loop_tick_busy_micros_bucket",
           "mm_loop_max_stall_micros", "validator=\"0\"",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
  }
  // Commits happened, so the finality histogram holds real samples: the
  // cluster submit path stamps submitted_at at the client.
  const auto count_pos = text.find("mm_finality_micros_count");
  ASSERT_NE(count_pos, std::string::npos);
  const auto value = text.substr(text.find(' ', count_pos) + 1);
  EXPECT_GT(std::stoull(value), 0u);

  // JSON flavor parses far enough to carry the same counters.
  const std::string json = http_get(nodes[1]->admin_port(), "/metrics.json");
  EXPECT_NE(json.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"mm_committed_transactions_total\""), std::string::npos);

  // Unknown paths get a 404, and the connection still closes cleanly.
  const std::string missing = http_get(nodes[2]->admin_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // The cluster is still healthy after serving scrapes.
  for (ValidatorId v = 0; v < 4; ++v) {
    TxBatch batch;
    batch.id = 7100 + v;
    batch.count = 5;
    batch.submitted_at = steady_now_micros();
    nodes[v]->submit({batch});
  }
  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 120) return false;
    }
    return true;
  }));
  for (auto& node : nodes) node->stop();
}

TEST_F(TcpClusterTest, AdminIntrospectionStatusTracesAndFlightrec) {
  admin_port_ = 0;
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();
  for (ValidatorId v = 0; v < 4; ++v) {
    TxBatch batch;
    batch.id = 7200 + v;
    batch.count = 25;
    batch.submitted_at = steady_now_micros();
    nodes[v]->submit({batch});
  }
  ASSERT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 100) return false;
    }
    return true;
  }));

  // /status: live node state as JSON, including connectivity and the head.
  const std::string status = http_get(nodes[0]->admin_port(), "/status");
  ASSERT_NE(status.find("HTTP/1.1 200 OK"), std::string::npos) << status.substr(0, 200);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  for (const char* needle : {
           "\"validator\":0", "\"ticking\":true", "\"highest_round\":",
           "\"head\":{\"round\":", "\"committed_transactions\":",
           "\"peers\":[{\"id\":0,\"connected\":true}",
           "\"mempool\":{\"batches\":", "\"checkpoint\":{\"active\":",
           "\"flightrec\":{\"rings\":", "\"commit_traces\":",
       }) {
    EXPECT_NE(status.find(needle), std::string::npos) << "missing: " << needle;
  }
  // Every peer link is up on a healthy 4-node mesh.
  EXPECT_EQ(status.find("\"connected\":false"), std::string::npos);

  // /trace/commits: the forensics buffer, wave attribution included. The
  // cluster has committed dozens of waves, so traces carry real arrivals.
  const std::string traces = http_get(nodes[1]->admin_port(), "/trace/commits");
  ASSERT_NE(traces.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(traces.find("application/json"), std::string::npos);
  for (const char* needle : {
           "{\"traces\":[", "\"slot\":{\"round\":", "\"closing\":{\"author\":",
           "\"closed_wave\":true", "\"arrivals\":[", "\"durable_micros\":",
       }) {
    EXPECT_NE(traces.find(needle), std::string::npos) << "missing: " << needle;
  }

  // /flightrec: a binary snapshot of the recorder, decodable as-is, holding
  // pipeline events from the loop and worker threads plus the on-demand
  // snapshot marker the endpoint itself stamps.
  const std::string dump = http_get(nodes[2]->admin_port(), "/flightrec");
  ASSERT_NE(dump.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(dump.find("application/octet-stream"), std::string::npos);
  const auto body_start = dump.find("\r\n\r\n") + 4;
  const Bytes body(dump.begin() + static_cast<std::ptrdiff_t>(body_start), dump.end());
  ASSERT_GE(body.size(), 12u);
  const auto events = obs::FlightRecorder::decode({body.data(), body.size()});
  ASSERT_FALSE(events.empty());
  bool saw_commit = false, saw_snapshot = false, saw_loop_label = false;
  for (const auto& event : events) {
    saw_commit |= event.type == obs::FlightEventType::kCommit;
    saw_snapshot |= event.type == obs::FlightEventType::kSnapshot;
    saw_loop_label |= event.label == "loop";
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_snapshot);
  EXPECT_TRUE(saw_loop_label);

  for (auto& node : nodes) node->stop();
}

TEST_F(TcpClusterTest, AdminRejectsBadRequests) {
  admin_port_ = 0;
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();
  ASSERT_TRUE(wait_for([&] { return nodes[0]->admin_port() > 0; }));
  const int port = nodes[0]->admin_port();

  // Non-GET methods: 405, with the connection still answering cleanly.
  const std::string post =
      http_raw(port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);

  // A malformed request line (not even HTTP) gets the same deterministic
  // rejection instead of a hung or dropped connection.
  const std::string garbage = http_raw(port, "\x01\x02garbage\r\n\r\n");
  EXPECT_NE(garbage.find("405"), std::string::npos);

  // An oversized request (no terminator, 10 KiB of header spill) draws a
  // 413 once it crosses the 8 KiB cap — told why, not silently dropped.
  const std::string oversized =
      http_raw(port, "GET /metrics HTTP/1.1\r\n" + std::string(10 * 1024, 'x'));
  EXPECT_NE(oversized.find("413 Content Too Large"), std::string::npos);

  // The admin plane still serves real scrapes afterwards.
  const std::string ok = http_get(port, "/status");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
  for (auto& node : nodes) node->stop();
}

TEST_F(TcpClusterTest, WatchdogStallAutoDumpsFlightRecorder) {
  // A 1 us budget makes the first busy tick a "stall"; the watchdog must
  // leave a decodable flightrec-v<id>-<n>.bin in the configured directory.
  loop_stall_budget_ = 1;
  flightrec_dir_ = ::testing::TempDir() + "flightrec_stall_test";
  std::filesystem::remove_all(flightrec_dir_);
  std::filesystem::create_directories(flightrec_dir_);
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();
  for (ValidatorId v = 0; v < 4; ++v) {
    TxBatch batch;
    batch.id = 7300 + v;
    batch.count = 25;
    batch.submitted_at = steady_now_micros();
    nodes[v]->submit({batch});
  }
  ASSERT_TRUE(wait_for([&] { return nodes[0]->flightrec_stall_dumps() > 0; }));
  for (auto& node : nodes) node->stop();

  // The dump is on disk, carries the magic, and decodes into a timeline
  // that includes the stall marker and the stall-triggered snapshot stamp.
  std::vector<std::filesystem::path> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(flightrec_dir_)) {
    if (entry.path().filename().string().rfind("flightrec-v0-", 0) == 0) {
      dumps.push_back(entry.path());
    }
  }
  ASSERT_FALSE(dumps.empty());
  std::ifstream in(dumps.front(), std::ios::binary);
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ASSERT_GE(data.size(), 12u);
  EXPECT_EQ(std::memcmp(data.data(), "MMFR", 4), 0);
  const auto events = obs::FlightRecorder::decode({data.data(), data.size()});
  ASSERT_FALSE(events.empty());
  bool saw_stall = false, saw_stall_snapshot = false;
  for (const auto& event : events) {
    saw_stall |= event.type == obs::FlightEventType::kStall;
    saw_stall_snapshot |=
        event.type == obs::FlightEventType::kSnapshot && event.a == 1;
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_stall_snapshot);
  std::filesystem::remove_all(flightrec_dir_);
}

TEST_F(TcpClusterTest, SharedVerifierCacheSkipsRepeatVerification) {
  // Four co-located runtimes sharing one (internally locked) cache: each
  // block pays ed25519 once process-wide; the other three runtimes' verify
  // workers hit the cache.
  shared_cache_ = std::make_shared<VerifierCache>();
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();
  TxBatch batch;
  batch.id = 77;
  batch.count = 10;
  nodes[1]->submit({batch});
  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 10) return false;
    }
    return true;
  }));
  for (auto& node : nodes) node->stop();
  EXPECT_GT(shared_cache_->hits(), 0u);
  EXPECT_GT(shared_cache_->misses(), 0u);
  // Worker-side hits surface in the combined pipeline counters.
  std::uint64_t total_cache_hits = 0;
  for (const auto& node : nodes) total_cache_hits += node->ingest_stats().cache_hits;
  EXPECT_GT(total_cache_hits, 0u);
}

TEST_F(TcpClusterTest, InlineVerificationCommitsIdentically) {
  // verify_threads = 0: decode + crypto run on the loop thread; the cluster
  // must behave the same (the pipeline stages are placement-agnostic).
  verify_threads_ = 0;
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();
  TxBatch batch;
  batch.id = 55;
  batch.count = 20;
  nodes[2]->submit({batch});
  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 20) return false;
    }
    return true;
  }));
  for (auto& node : nodes) node->stop();
  // Inline ingestion pays crypto inside the core: verified, not preverified.
  for (const auto& node : nodes) {
    const IngestStats stats = node->ingest_stats();
    EXPECT_GT(stats.verified, 0u) << "node " << node->id();
    EXPECT_EQ(stats.preverified, 0u);
  }
}

TEST_F(TcpClusterTest, LateStartingNodeJoinsViaAntiEntropy) {
  // Start only three of four nodes; they commit on their own (2f+1 quorum).
  // The fourth starts late: its peers' broadcasts predate its sockets, so
  // everything must reach it through the periodic tip offers plus fetch.
  auto nodes = make_cluster();
  for (ValidatorId v = 0; v < 3; ++v) nodes[v]->start();
  TxBatch batch;
  batch.id = 3;
  batch.count = 30;
  nodes[0]->submit({batch});
  ASSERT_TRUE(wait_for([&] { return nodes[0]->committed_transactions() >= 30; }));

  const Round rounds_before_join = nodes[0]->highest_round();
  EXPECT_GT(rounds_before_join, 4u);
  nodes[3]->start();
  // The late node reaches the cluster's round frontier and commits.
  EXPECT_TRUE(wait_for([&] {
    return nodes[3]->highest_round() >= rounds_before_join &&
           nodes[3]->committed_transactions() >= 30;
  })) << "late node stuck at round " << nodes[3]->highest_round();
  for (auto& node : nodes) node->stop();
}

TEST_F(TcpClusterTest, CommitSequencesAgreeAcrossNodes) {
  auto nodes = make_cluster();
  std::mutex mutex;
  std::vector<std::vector<BlockRef>> sequences(4);
  for (ValidatorId v = 0; v < 4; ++v) {
    nodes[v]->set_commit_handler([&, v](const CommittedSubDag& sub_dag) {
      std::lock_guard<std::mutex> g(mutex);
      for (const auto& block : sub_dag.blocks) sequences[v].push_back(block->ref());
    });
  }
  for (auto& node : nodes) node->start();
  for (ValidatorId v = 0; v < 4; ++v) {
    TxBatch batch;
    batch.id = v;
    batch.count = 10;
    nodes[v]->submit({batch});
  }
  EXPECT_TRUE(wait_for([&] {
    std::lock_guard<std::mutex> g(mutex);
    for (const auto& sequence : sequences) {
      if (sequence.size() < 30) return false;
    }
    return true;
  }));
  for (auto& node : nodes) node->stop();

  std::lock_guard<std::mutex> g(mutex);
  for (int i = 1; i < 4; ++i) {
    const std::size_t common = std::min(sequences[0].size(), sequences[i].size());
    for (std::size_t k = 0; k < common; ++k) {
      ASSERT_EQ(sequences[0][k], sequences[i][k])
          << "node 0 and node " << i << " diverge at position " << k;
    }
  }
}

TEST_F(TcpClusterTest, ParallelCommitClusterAgreesAndKeepsScanOffLoop) {
  // The cross-thread committer handoff under real sockets: insertion stream
  // → worker-side replica scan → posted decisions → loop-thread apply. The
  // sanitizer CI matrix runs this under TSan; functionally, all nodes must
  // commit the same sequences and every commit must come through the
  // off-loop path (scans on workers, apply batches on the loop thread).
  parallel_commit_ = true;
  auto nodes = make_cluster();
  std::mutex mutex;
  std::vector<std::vector<BlockRef>> sequences(4);
  for (ValidatorId v = 0; v < 4; ++v) {
    nodes[v]->set_commit_handler([&, v](const CommittedSubDag& sub_dag) {
      std::lock_guard<std::mutex> g(mutex);
      for (const auto& block : sub_dag.blocks) sequences[v].push_back(block->ref());
    });
  }
  for (auto& node : nodes) node->start();
  for (ValidatorId v = 0; v < 4; ++v) {
    EXPECT_TRUE(nodes[v]->parallel_commit_active());
    TxBatch batch;
    batch.id = 500 + v;
    batch.count = 20;
    nodes[v]->submit({batch});
  }
  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 80) return false;
    }
    return true;
  })) << "committed: " << nodes[0]->committed_transactions();
  for (auto& node : nodes) node->stop();

  for (const auto& node : nodes) {
    // Every commit went through the split path: worker scans happened, and
    // the loop thread consumed at least one posted decision batch.
    EXPECT_GT(node->commit_scans(), 0u) << "node " << node->id();
    EXPECT_GT(node->commit_batches_applied(), 0u) << "node " << node->id();
    EXPECT_GT(node->committed_blocks(), 0u) << "node " << node->id();
  }

  std::lock_guard<std::mutex> g(mutex);
  for (int i = 1; i < 4; ++i) {
    const std::size_t common = std::min(sequences[0].size(), sequences[i].size());
    ASSERT_GT(common, 0u);
    for (std::size_t k = 0; k < common; ++k) {
      ASSERT_EQ(sequences[0][k], sequences[i][k])
          << "node 0 and node " << i << " diverge at position " << k;
    }
  }
}

TEST_F(TcpClusterTest, EgressOffloadEncodesOffLoopAndCommits) {
  // Default configuration: outbound blocks are encoded once on the worker
  // pool into shared frames. The cluster must commit exactly as before, and
  // the encode counter proves the path was taken.
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();
  for (ValidatorId v = 0; v < 4; ++v) {
    EXPECT_TRUE(nodes[v]->egress_offload_active());
    TxBatch batch;
    batch.id = 900 + v;
    batch.count = 10;
    nodes[v]->submit({batch});
  }
  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 40) return false;
    }
    return true;
  }));
  for (auto& node : nodes) node->stop();
  for (const auto& node : nodes) {
    // At least one frame per own proposal went through the worker-side
    // encoder (offers and fetch responses add more).
    EXPECT_GT(node->egress_frames_encoded(), 0u) << "node " << node->id();
  }
}

TEST_F(TcpClusterTest, InlineEgressCommitsIdentically) {
  // egress_offload off with workers present: encode happens on the loop
  // thread but still once per block, fanned out as shared frames.
  egress_offload_ = false;
  auto nodes = make_cluster();
  for (auto& node : nodes) node->start();
  TxBatch batch;
  batch.id = 44;
  batch.count = 20;
  nodes[0]->submit({batch});
  EXPECT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 20) return false;
    }
    return true;
  }));
  for (auto& node : nodes) node->stop();
  for (const auto& node : nodes) {
    EXPECT_FALSE(node->egress_offload_active());
    EXPECT_GT(node->egress_frames_encoded(), 0u);
  }
}

TEST_F(TcpClusterTest, GroupCommitWalClusterCommitsAndRestartsCleanly) {
  // The full write-side pipeline under real sockets: egress encode on the
  // worker pool, WAL appends through the group-commit writer thread,
  // proposal broadcasts gated on durability acks. This is a TSan target (the
  // net suite): it race-checks the loop ↔ WAL-writer handoff. A node is then
  // restarted from its group-committed log — recovery must be as good as
  // from an inline log.
  wal_group_commit_ = true;
  const auto dir = std::filesystem::temp_directory_path();
  std::vector<std::string> wal_paths;
  for (int i = 0; i < 4; ++i) {
    auto path = dir / ("mahi_tcp_gcwal_" + std::to_string(::getpid()) + "_" +
                       std::to_string(i) + ".wal");
    std::filesystem::remove(path);
    wal_paths.push_back(path.string());
  }

  auto nodes = make_cluster(wal_paths);
  for (auto& node : nodes) node->start();
  for (ValidatorId v = 0; v < 4; ++v) {
    EXPECT_TRUE(nodes[v]->wal_group_commit_active());
    TxBatch batch;
    batch.id = 700 + v;
    batch.count = 10;
    nodes[v]->submit({batch});
  }
  ASSERT_TRUE(wait_for([&] {
    for (const auto& node : nodes) {
      if (node->committed_transactions() < 40) return false;
    }
    return true;
  })) << "committed: " << nodes[0]->committed_transactions();

  for (const auto& node : nodes) {
    EXPECT_GT(node->wal_groups_flushed(), 0u) << "node " << node->id();
    EXPECT_GT(node->egress_frames_encoded(), 0u) << "node " << node->id();
  }

  // Restart node 2 from its group-committed WAL.
  const Round round_before = nodes[2]->highest_round();
  nodes[2]->stop();
  nodes[2].reset();
  nodes[2] = make_node(2, wal_paths[2]);
  nodes[2]->start();
  EXPECT_GE(nodes[2]->highest_round(), 1u);  // recovered history

  TxBatch more;
  more.id = 777;
  more.count = 15;
  nodes[0]->submit({more});
  EXPECT_TRUE(wait_for([&] {
    return nodes[0]->committed_transactions() >= 55 &&
           nodes[2]->highest_round() > round_before;
  })) << "post-restart commits stalled";

  for (auto& node : nodes) {
    if (node) node->stop();
  }
  // Every log replays cleanly end to end (group boundaries are invisible).
  for (const auto& path : wal_paths) {
    FileWal::Visitor visitor;
    visitor.on_block = [](BlockPtr, bool) {};
    const auto replay = FileWal::replay(path, visitor);
    EXPECT_GT(replay.records, 0u) << path;
    std::filesystem::remove(path);
  }
}

TEST_F(TcpClusterTest, CheckpointClusterLateJoinerCatchesUpViaSnapshot) {
  // End-to-end snapshot catch-up over real sockets (and the TSan target for
  // the checkpoint writer's cross-thread handoffs): three nodes run with GC
  // + checkpointing until their horizons are far past genesis, then the
  // fourth starts from nothing. Its ancestry walk dead-ends below everyone's
  // horizon; the kHorizon / kCheckpointRequest / kCheckpointChain handshake
  // ships a threshold-certified base+delta chain, the joiner installs it as
  // a trust root and rejoins consensus.
  gc_depth_ = 20;
  checkpoint_interval_ = 5;
  min_round_delay_ = millis(10);

  const auto dir = std::filesystem::temp_directory_path();
  std::vector<std::string> wal_dirs;
  for (int i = 0; i < 4; ++i) {
    auto path = dir / ("mahi_tcp_ckpt_" + std::to_string(::getpid()) + "_" +
                       std::to_string(i));
    std::filesystem::remove_all(path);
    wal_dirs.push_back(path.string());
  }

  auto nodes = make_cluster(wal_dirs);
  for (ValidatorId v = 0; v < 3; ++v) nodes[v]->start();

  // Keep load flowing so rounds (and the GC horizon) advance.
  std::uint64_t batch_id = 9000;
  const auto feed = [&] {
    TxBatch batch;
    batch.id = ++batch_id;
    batch.count = 5;
    nodes[0]->submit({batch});
  };
  feed();
  ASSERT_TRUE(wait_for([&] {
    feed();
    return nodes[0]->highest_round() > 2 * gc_depth_ + 10 &&
           nodes[0]->checkpoints_written() > 0 &&
           nodes[0]->checkpoint_certs() > 0;
  })) << "cluster never built a certified checkpointable history; round "
      << nodes[0]->highest_round();
  ASSERT_TRUE(nodes[0]->segmented_wal_active());

  // The late joiner starts from genesis, far below every peer's horizon.
  nodes[3]->start();
  EXPECT_TRUE(wait_for([&] {
    feed();
    return nodes[3]->snapshot_catchups() >= 1;
  })) << "the snapshot handshake never completed";

  // The catch-up traveled as a threshold-certified base+delta chain: the
  // serving side prefers its certified chain prefix, so the joiner's install
  // must be a trust-root (certified) one, never the legacy faith path.
  EXPECT_GE(nodes[3]->certified_snapshot_installs(), 1u)
      << "install fell back to the uncertified legacy path ("
      << nodes[3]->uncertified_snapshot_installs() << " uncertified)";

  // Installed state turns into live participation: the joiner tracks the
  // cluster's rounds and delivers commits.
  EXPECT_TRUE(wait_for([&] {
    feed();
    return nodes[3]->committed_blocks() > 0 &&
           nodes[3]->highest_round() + gc_depth_ > nodes[0]->highest_round();
  })) << "joiner installed a snapshot but never rejoined; joiner round "
      << nodes[3]->highest_round() << " vs " << nodes[0]->highest_round();

  // Someone served the snapshot, and the joiner persisted it as its own
  // recovery point (base record + certificate sidecar).
  std::uint64_t served = 0;
  for (ValidatorId v = 0; v < 3; ++v) served += nodes[v]->checkpoints_served();
  EXPECT_GE(served, 1u);
  EXPECT_FALSE(CheckpointStore::list(wal_dirs[3]).empty());

  // The servers ran the incremental layout: with interval 5 and the default
  // delta bound, most cuts land as delta links rather than full snapshots.
  std::uint64_t delta_cuts = 0;
  for (ValidatorId v = 0; v < 3; ++v) delta_cuts += nodes[v]->checkpoint_delta_cuts();
  EXPECT_GT(delta_cuts, 0u);

  for (auto& node : nodes) node->stop();
  for (const auto& path : wal_dirs) std::filesystem::remove_all(path);
}

TEST_F(TcpClusterTest, SurvivesNodeRestartWithWal) {
  const auto dir = std::filesystem::temp_directory_path();
  std::vector<std::string> wal_paths;
  for (int i = 0; i < 4; ++i) {
    auto path = dir / ("mahi_tcp_wal_" + std::to_string(::getpid()) + "_" +
                       std::to_string(i) + ".wal");
    std::filesystem::remove(path);
    wal_paths.push_back(path.string());
  }

  auto nodes = make_cluster(wal_paths);
  for (auto& node : nodes) node->start();
  TxBatch batch;
  batch.id = 7;
  batch.count = 40;
  nodes[1]->submit({batch});
  ASSERT_TRUE(wait_for([&] { return nodes[0]->committed_transactions() >= 40; }));

  const Round round_before = nodes[3]->highest_round();
  // Restart node 3 from its WAL: it must rejoin without equivocating and
  // keep committing.
  nodes[3]->stop();
  nodes[3].reset();
  nodes[3] = make_node(3, wal_paths[3]);  // same mesh addresses, same WAL
  nodes[3]->start();
  EXPECT_GE(nodes[3]->highest_round(), 1u);  // recovered history

  TxBatch more;
  more.id = 8;
  more.count = 15;
  nodes[0]->submit({more});
  EXPECT_TRUE(wait_for([&] {
    return nodes[0]->committed_transactions() >= 55 &&
           nodes[3]->highest_round() > round_before;
  })) << "post-restart commits stalled";

  for (auto& node : nodes) {
    if (node) node->stop();
  }
  for (const auto& path : wal_paths) std::filesystem::remove(path);
}

}  // namespace
}  // namespace mahimahi::net
