// Tests for blocks, committees and the §2.3 validity rules.
#include <gtest/gtest.h>

#include "types/block.h"
#include "types/committee.h"
#include "types/validation.h"

namespace mahimahi {
namespace {

class BlockTest : public ::testing::Test {
 protected:
  BlockTest() : setup_(Committee::make_test(4)) {}

  // A valid round-1 block by `author` referencing all four genesis blocks.
  Block make_round1(ValidatorId author, std::vector<TxBatch> batches = {}) {
    return Block::make(author, 1, genesis_refs(), std::move(batches),
                       coin().share(author, 1), setup_.keypairs[author].private_key);
  }

  std::vector<BlockRef> genesis_refs() {
    std::vector<BlockRef> refs;
    for (ValidatorId v = 0; v < 4; ++v) {
      refs.push_back(Block::genesis(v, coin()).ref());
    }
    return refs;
  }

  const Committee& committee() const { return setup_.committee; }
  const crypto::ThresholdCoin& coin() const { return setup_.committee.coin(); }

  Committee::TestSetup setup_;
};

TEST_F(BlockTest, CommitteeThresholds) {
  EXPECT_EQ(committee().size(), 4u);
  EXPECT_EQ(committee().f(), 1u);
  EXPECT_EQ(committee().quorum_threshold(), 3u);
  EXPECT_EQ(committee().validity_threshold(), 2u);

  const auto big = Committee::make_test(10);
  EXPECT_EQ(big.committee.f(), 3u);
  EXPECT_EQ(big.committee.quorum_threshold(), 7u);

  const auto fifty = Committee::make_test(50);
  EXPECT_EQ(fifty.committee.f(), 16u);
  EXPECT_EQ(fifty.committee.quorum_threshold(), 33u);
}

TEST_F(BlockTest, MakeTestIsDeterministic) {
  const auto a = Committee::make_test(4, 7);
  const auto b = Committee::make_test(4, 7);
  const auto c = Committee::make_test(4, 8);
  EXPECT_EQ(a.committee.public_key(0), b.committee.public_key(0));
  EXPECT_EQ(a.committee.epoch_seed(), b.committee.epoch_seed());
  EXPECT_NE(a.committee.public_key(0), c.committee.public_key(0));
}

TEST_F(BlockTest, GenesisIsDeterministic) {
  const Block g1 = Block::genesis(2, coin());
  const Block g2 = Block::genesis(2, coin());
  EXPECT_EQ(g1.digest(), g2.digest());
  EXPECT_EQ(g1.round(), 0u);
  EXPECT_TRUE(g1.parents().empty());
  EXPECT_NE(g1.digest(), Block::genesis(3, coin()).digest());
}

TEST_F(BlockTest, DigestCommitsToContent) {
  const Block a = make_round1(0);
  TxBatch batch;
  batch.id = 9;
  const Block b = make_round1(0, {batch});
  EXPECT_NE(a.digest(), b.digest());
}

TEST_F(BlockTest, SerializeDeserializeRoundTrip) {
  TxBatch batch;
  batch.id = 77;
  batch.submitted_at = 123456;
  batch.count = 100;
  batch.tx_bytes = 512;
  batch.payload = to_bytes("actual payload bytes");
  const Block original = make_round1(1, {batch});

  const Bytes wire = original.serialize();
  const Block decoded = Block::deserialize({wire.data(), wire.size()});

  EXPECT_EQ(decoded.digest(), original.digest());
  EXPECT_EQ(decoded.author(), original.author());
  EXPECT_EQ(decoded.round(), original.round());
  EXPECT_EQ(decoded.parents(), original.parents());
  ASSERT_EQ(decoded.batches().size(), 1u);
  EXPECT_EQ(decoded.batches()[0], original.batches()[0]);
  EXPECT_EQ(decoded.signature(), original.signature());
}

TEST_F(BlockTest, DeserializeRejectsGarbage) {
  const Bytes garbage = to_bytes("definitely not a block");
  EXPECT_THROW(Block::deserialize({garbage.data(), garbage.size()}), serde::SerdeError);
}

TEST_F(BlockTest, DeserializeRejectsTruncation) {
  const Bytes wire = make_round1(0).serialize();
  for (const std::size_t cut : {1ul, 10ul, 63ul, wire.size() - 1}) {
    EXPECT_THROW(Block::deserialize({wire.data(), wire.size() - cut}), serde::SerdeError)
        << "cut " << cut;
  }
}

TEST_F(BlockTest, DeserializeRejectsTrailingBytes) {
  Bytes wire = make_round1(0).serialize();
  wire.push_back(0x00);
  EXPECT_THROW(Block::deserialize({wire.data(), wire.size()}), serde::SerdeError);
}

TEST_F(BlockTest, TransactionAndWireAccounting) {
  TxBatch simulated;
  simulated.count = 50;
  simulated.tx_bytes = 512;
  TxBatch real;
  real.count = 1;
  real.payload = Bytes(100, 0xaa);
  const Block b = make_round1(2, {simulated, real});
  EXPECT_EQ(b.transaction_count(), 51u);
  EXPECT_GE(b.wire_bytes(), 50u * 512 + 100);
}

// --- Validation rules (§2.3) -----------------------------------------------

TEST_F(BlockTest, ValidBlockPasses) {
  EXPECT_EQ(validate_block(make_round1(0), committee()), BlockValidity::kValid);
}

TEST_F(BlockTest, RejectsUnknownAuthor) {
  // An author index outside the committee.
  const Block b = Block::make(9, 1, genesis_refs(), {}, coin().share(9, 1),
                              setup_.keypairs[0].private_key);
  EXPECT_EQ(validate_block(b, committee()), BlockValidity::kUnknownAuthor);
}

TEST_F(BlockTest, RejectsNetworkGenesis) {
  const Block g = Block::genesis(0, coin());
  EXPECT_EQ(validate_block(g, committee()), BlockValidity::kGenesisFromNetwork);
}

TEST_F(BlockTest, RejectsBadSignature) {
  // Signed with validator 1's key but claims author 0.
  const Block forged = Block::make(0, 1, genesis_refs(), {}, coin().share(0, 1),
                                   setup_.keypairs[1].private_key);
  EXPECT_EQ(validate_block(forged, committee()), BlockValidity::kBadSignature);
}

TEST_F(BlockTest, RejectsBadCoinShare) {
  // Coin share for the wrong round.
  const Block b = Block::make(0, 1, genesis_refs(), {}, coin().share(0, 5),
                              setup_.keypairs[0].private_key);
  EXPECT_EQ(validate_block(b, committee()), BlockValidity::kBadCoinShare);
}

TEST_F(BlockTest, RejectsDuplicateParents) {
  auto refs = genesis_refs();
  refs.push_back(refs[0]);
  const Block b = Block::make(0, 1, refs, {}, coin().share(0, 1),
                              setup_.keypairs[0].private_key);
  EXPECT_EQ(validate_block(b, committee()), BlockValidity::kDuplicateParents);
}

TEST_F(BlockTest, RejectsInsufficientParentQuorum) {
  auto refs = genesis_refs();
  refs.resize(2);  // 2 < 2f+1 = 3
  const Block b = Block::make(0, 1, refs, {}, coin().share(0, 1),
                              setup_.keypairs[0].private_key);
  EXPECT_EQ(validate_block(b, committee()), BlockValidity::kInsufficientParentQuorum);
}

TEST_F(BlockTest, RejectsParentFromFutureRound) {
  auto refs = genesis_refs();
  refs[0].round = 1;  // same round as the block
  const Block b = Block::make(0, 1, refs, {}, coin().share(0, 1),
                              setup_.keypairs[0].private_key);
  EXPECT_EQ(validate_block(b, committee()), BlockValidity::kParentFromFuture);
}

TEST_F(BlockTest, RejectsParentByUnknownAuthor) {
  auto refs = genesis_refs();
  refs[0].author = 17;
  const Block b = Block::make(0, 1, refs, {}, coin().share(0, 1),
                              setup_.keypairs[0].private_key);
  EXPECT_EQ(validate_block(b, committee()), BlockValidity::kParentUnknownAuthor);
}

TEST_F(BlockTest, QuorumCountsDistinctAuthorsNotRefs) {
  // Three refs but only two distinct round-0 authors (one from an older
  // round): must fail the 2f+1 rule at round-1... constructed at round 2.
  const Block base = make_round1(0);
  auto refs = genesis_refs();
  std::vector<BlockRef> parents = {refs[0], refs[1]};  // round 0: 2 authors? -> used at round 1
  parents.push_back(base.ref());                       // round 1 ref for a round-2 block
  const Block b = Block::make(0, 2, parents, {}, coin().share(0, 2),
                              setup_.keypairs[0].private_key);
  EXPECT_EQ(validate_block(b, committee()), BlockValidity::kInsufficientParentQuorum);
}

TEST_F(BlockTest, ValidationOptionsSkipExpensiveChecks) {
  const Block forged = Block::make(0, 1, genesis_refs(), {}, coin().share(0, 5),
                                   setup_.keypairs[1].private_key);
  ValidationOptions lax;
  lax.verify_signature = false;
  lax.verify_coin_share = false;
  EXPECT_EQ(validate_block(forged, committee(), lax), BlockValidity::kValid);
}

TEST_F(BlockTest, ToStringSmoke) {
  EXPECT_EQ(to_string(BlockValidity::kValid), "valid");
  EXPECT_FALSE(to_string(BlockValidity::kBadSignature).empty());
  const BlockRef ref = make_round1(3).ref();
  EXPECT_NE(ref.to_string().find("v3"), std::string::npos);
}

}  // namespace
}  // namespace mahimahi
