// Staged ingestion pipeline tests: batch entry point, per-stage rejection,
// verifier-cache interaction, idempotence, and driver equivalence (per-block
// "sim style" vs batched "TCP worker style" delivery commit identically).
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/dag_builder.h"
#include "validator/validator.h"

namespace mahimahi {
namespace {

class IngestPipelineTest : public ::testing::Test {
 protected:
  // Same seed as DagBuilder's default, so blocks built there verify against
  // this committee's keys.
  IngestPipelineTest() : setup_(Committee::make_test(4)), builder_(4) {}

  ValidatorConfig observer_config(ValidatorId id) {
    ValidatorConfig config;
    config.id = id;
    config.committer = mahi_mahi_5(1);
    config.observer = true;  // commits are then a pure function of the feed
    config.validation.verify_signature = true;
    config.validation.verify_coin_share = true;
    return config;
  }

  std::unique_ptr<ValidatorCore> make_observer(ValidatorId id,
                                               ValidatorConfig config) {
    return std::make_unique<ValidatorCore>(setup_.committee,
                                           setup_.keypairs[id].private_key, config);
  }
  std::unique_ptr<ValidatorCore> make_observer(ValidatorId id) {
    return make_observer(id, observer_config(id));
  }

  // Rounds 1..last, fully connected; returns blocks in causal order.
  std::vector<BlockPtr> build_schedule(Round last) {
    std::vector<BlockPtr> schedule;
    for (Round r = 1; r <= last; ++r) {
      for (const auto& block : builder_.add_full_round(r)) schedule.push_back(block);
    }
    return schedule;
  }

  static std::vector<IngestBlock> as_batch(const std::vector<BlockPtr>& blocks,
                                           ValidatorId from = 1) {
    std::vector<IngestBlock> items;
    for (const auto& block : blocks) items.push_back({block, from, false});
    return items;
  }

  // A round-1 block for `author` whose signature does not verify (signed
  // with another validator's key; the coin share is the author's own, so
  // only the signature stage can reject it).
  BlockPtr forged_round1_block(ValidatorId author, ValidatorId signer) {
    std::vector<BlockRef> parents;
    for (const auto& genesis : builder_.dag().blocks_at(0)) parents.push_back(genesis->ref());
    return std::make_shared<const Block>(
        Block::make(author, 1, std::move(parents), {},
                    setup_.committee.coin().share(author, 1),
                    setup_.keypairs[signer].private_key));
  }

  Committee::TestSetup setup_;
  DagBuilder builder_;
};

TEST_F(IngestPipelineTest, BadSignatureInBatchRejectsOnlyThatBlock) {
  auto core = make_observer(0);
  auto round1 = builder_.add_full_round(1);

  std::vector<IngestBlock> batch = as_batch({round1[0], round1[1]});
  batch.push_back({forged_round1_block(2, /*signer=*/1), 1, false});
  batch.push_back({round1[3], 1, false});

  const Actions actions = core->on_blocks(std::move(batch), 0);

  EXPECT_EQ(actions.inserted.size(), 3u);
  EXPECT_TRUE(core->dag().contains(round1[0]->digest()));
  EXPECT_TRUE(core->dag().contains(round1[1]->digest()));
  EXPECT_TRUE(core->dag().contains(round1[3]->digest()));
  EXPECT_EQ(core->blocks_rejected(), 1u);
  EXPECT_EQ(core->ingest_stats().crypto_rejected, 1u);
  EXPECT_EQ(core->ingest_stats().verified, 3u);
  EXPECT_EQ(core->ingest_stats().structurally_rejected, 0u);
}

TEST_F(IngestPipelineTest, BadCoinShareRejectsInBatch) {
  auto core = make_observer(0);
  auto round1 = builder_.add_full_round(1);

  std::vector<BlockRef> parents;
  for (const auto& genesis : builder_.dag().blocks_at(0)) parents.push_back(genesis->ref());
  // Valid signature, wrong round's coin share.
  auto bad_coin = std::make_shared<const Block>(
      Block::make(2, 1, std::move(parents), {}, setup_.committee.coin().share(2, 9),
                  setup_.keypairs[2].private_key));

  std::vector<IngestBlock> batch = as_batch({round1[0], round1[1]});
  batch.push_back({bad_coin, 1, false});

  const Actions actions = core->on_blocks(std::move(batch), 0);
  EXPECT_EQ(actions.inserted.size(), 2u);
  EXPECT_EQ(core->ingest_stats().crypto_rejected, 1u);
  EXPECT_FALSE(core->dag().contains(bad_coin->digest()));
}

TEST_F(IngestPipelineTest, StructuralRejectionHappensBeforeCrypto) {
  auto core = make_observer(0);
  builder_.add_full_round(1);

  // Duplicate parent references: structurally invalid, signature fine.
  const auto genesis = builder_.dag().blocks_at(0);
  std::vector<BlockRef> parents{genesis[0]->ref(), genesis[0]->ref(),
                                genesis[1]->ref(), genesis[2]->ref(),
                                genesis[3]->ref()};
  auto malformed = std::make_shared<const Block>(
      Block::make(1, 1, std::move(parents), {}, setup_.committee.coin().share(1, 1),
                  setup_.keypairs[1].private_key));

  core->on_blocks({{malformed, 1, false}}, 0);
  EXPECT_EQ(core->ingest_stats().structurally_rejected, 1u);
  // The crypto stage never saw it.
  EXPECT_EQ(core->ingest_stats().crypto_rejected, 0u);
  EXPECT_EQ(core->ingest_stats().verified, 0u);
}

TEST_F(IngestPipelineTest, DuplicateAndOutOfOrderDeliveryIsIdempotent) {
  auto core = make_observer(0);
  const auto schedule = build_schedule(3);  // 12 blocks, rounds 1..3

  // Deliver out of order (round 3 first) with every block duplicated inside
  // the same batch.
  std::vector<BlockPtr> shuffled(schedule.rbegin(), schedule.rend());
  std::vector<BlockPtr> doubled = shuffled;
  doubled.insert(doubled.end(), shuffled.begin(), shuffled.end());

  const Actions first = core->on_blocks(as_batch(doubled), 0);
  EXPECT_EQ(first.inserted.size(), schedule.size());
  EXPECT_EQ(core->dag().block_count(), 4 + schedule.size());  // + genesis
  // Each unique block paid crypto exactly once despite the duplicates.
  EXPECT_EQ(core->ingest_stats().verified, schedule.size());

  // Redelivering everything is a no-op.
  const Actions second = core->on_blocks(as_batch(doubled), 0);
  EXPECT_TRUE(second.inserted.empty());
  EXPECT_TRUE(second.committed.empty());
  EXPECT_EQ(core->dag().block_count(), 4 + schedule.size());
  EXPECT_EQ(core->ingest_stats().verified, schedule.size());
  EXPECT_EQ(core->blocks_rejected(), 0u);
}

TEST_F(IngestPipelineTest, VerifierCacheHitsSkipCryptoStage) {
  auto cache = std::make_shared<VerifierCache>();
  ValidatorConfig config0 = observer_config(0);
  config0.signature_cache = cache;
  ValidatorConfig config1 = observer_config(1);
  config1.signature_cache = cache;
  auto core0 = make_observer(0, config0);
  auto core1 = make_observer(1, config1);

  const auto schedule = build_schedule(2);
  core0->on_blocks(as_batch(schedule), 0);
  EXPECT_EQ(core0->ingest_stats().verified, schedule.size());
  EXPECT_EQ(core0->ingest_stats().cache_hits, 0u);

  // The co-located second core sees every digest already verified.
  core1->on_blocks(as_batch(schedule), 0);
  EXPECT_EQ(core1->ingest_stats().cache_hits, schedule.size());
  EXPECT_EQ(core1->ingest_stats().verified, 0u);
  EXPECT_GE(cache->hits(), schedule.size());
}

TEST_F(IngestPipelineTest, PreverifiedBlocksSkipCryptoAndSeedCache) {
  auto cache = std::make_shared<VerifierCache>();
  ValidatorConfig config = observer_config(0);
  config.signature_cache = cache;
  auto core = make_observer(0, config);

  const auto round1 = builder_.add_full_round(1);
  std::vector<IngestBlock> batch;
  for (const auto& block : round1) batch.push_back({block, 1, true});
  const Actions actions = core->on_blocks(std::move(batch), 0);

  EXPECT_EQ(actions.inserted.size(), round1.size());
  EXPECT_EQ(core->ingest_stats().preverified, round1.size());
  EXPECT_EQ(core->ingest_stats().verified, 0u);
  for (const auto& block : round1) EXPECT_TRUE(cache->contains(block->digest()));
}

// The determinism claim behind the multi-driver architecture: the commit
// sequence is a pure function of the delivered blocks, independent of how
// the driver groups them — one at a time (the simulator's per-event
// delivery) or in arbitrary batches (the TCP runtime's verify workers).
TEST_F(IngestPipelineTest, PerBlockAndBatchedDeliveryCommitIdentically) {
  const auto schedule = build_schedule(12);

  auto per_block = make_observer(0);
  auto batched = make_observer(0);

  std::vector<BlockRef> commits_per_block;
  for (const auto& block : schedule) {
    const Actions actions = per_block->on_block(block, 1, 0);
    for (const auto& sub_dag : actions.committed) {
      for (const auto& committed : sub_dag.blocks) {
        commits_per_block.push_back(committed->ref());
      }
    }
  }

  std::vector<BlockRef> commits_batched;
  // Deliver in uneven chunks, each internally reversed (arrival order inside
  // a worker batch is arbitrary).
  std::size_t position = 0, chunk = 1;
  while (position < schedule.size()) {
    const std::size_t size = std::min(chunk, schedule.size() - position);
    std::vector<BlockPtr> blocks(schedule.begin() + position,
                                 schedule.begin() + position + size);
    std::reverse(blocks.begin(), blocks.end());
    const Actions actions = batched->on_blocks(as_batch(blocks), 0);
    for (const auto& sub_dag : actions.committed) {
      for (const auto& committed : sub_dag.blocks) {
        commits_batched.push_back(committed->ref());
      }
    }
    position += size;
    chunk = chunk * 2 + 1;
  }

  EXPECT_FALSE(commits_per_block.empty());
  EXPECT_EQ(commits_per_block, commits_batched);
  EXPECT_EQ(per_block->dag().block_count(), batched->dag().block_count());
  EXPECT_EQ(per_block->dag().highest_round(), batched->dag().highest_round());
}

TEST_F(IngestPipelineTest, ObserverNeverProposes) {
  auto core = make_observer(0);
  const auto schedule = build_schedule(6);
  const Actions actions = core->on_blocks(as_batch(schedule), 0);
  EXPECT_TRUE(actions.broadcast.empty());
  EXPECT_EQ(core->last_proposed_round(), 0u);
  // It still follows and commits.
  EXPECT_GT(core->dag().highest_round(), 0u);
}

}  // namespace
}  // namespace mahimahi
