// Crash-recovery integration tests (§4: WAL + restart).
//
// A validator crashes mid-run, loses its in-memory state, and rejoins by
// replaying its write-ahead log. The properties under test:
//   * the restarted validator never equivocates (the WAL restored its
//     proposer round before it produced a new block);
//   * agreement holds across all validators, the restarted one included
//     (prefix-consistent delivered sequences, Lemmas 5-7);
//   * the cluster keeps committing through the outage and the restarted
//     validator catches back up (liveness).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

#include "checkpoint/checkpoint.h"
#include "checkpoint/segmented_wal.h"
#include "sim/harness.h"
#include "wal/wal.h"

namespace mahimahi::sim {
namespace {

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("mahi_recovery_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

SimConfig recovery_config() {
  SimConfig config;
  config.protocol = Protocol::kMahiMahi5;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(25);
  config.load_tps = 1'000;
  config.duration = seconds(18);
  config.warmup = seconds(2);
  config.record_sequences = true;
  config.seed = 21;
  return config;
}

void expect_prefix_consistent(const SimResult& result, const std::string& label) {
  const auto& sequences = result.sequences;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    for (std::size_t j = i + 1; j < sequences.size(); ++j) {
      const std::size_t common = std::min(sequences[i].size(), sequences[j].size());
      for (std::size_t k = 0; k < common; ++k) {
        ASSERT_EQ(sequences[i][k], sequences[j][k])
            << label << ": validators " << i << " and " << j << " diverge at " << k;
      }
    }
  }
}

TEST(Recovery, RestartFromFileWalRejoinsWithoutEquivocating) {
  SimConfig config = recovery_config();
  config.wal_dir = fresh_dir("filewal");
  config.restarts.push_back({.id = 2, .crash_at = seconds(6), .restart_at = seconds(9)});

  const SimResult result = run_simulation(config);

  // The WAL was actually replayed, and replay restored enough state that
  // the restarted validator produced no conflicting block for any round it
  // had already proposed.
  EXPECT_GT(result.wal_replayed_blocks, 50u);
  EXPECT_EQ(result.equivocation_cells, 0u);

  // Agreement across all four validators, including the restarted one.
  expect_prefix_consistent(result, "file-wal restart");

  // Liveness: the cluster kept committing (3 of 4 validators suffice), and
  // the restarted validator caught up to within a few waves of its peers.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  const std::size_t peer_len = result.sequences[0].size();
  EXPECT_GT(peer_len, 0u);
  EXPECT_GT(result.sequences[2].size(), peer_len / 2)
      << "restarted validator should resume delivering";
}

TEST(Recovery, RestartFromInMemoryLogMatchesFileWal) {
  // Same scenario without wal_dir: the harness replays its in-memory block
  // log. Outcomes must be byte-identical to the file path (the sim is
  // deterministic and the WAL round-trip is lossless).
  SimConfig mem = recovery_config();
  mem.restarts.push_back({.id = 2, .crash_at = seconds(6), .restart_at = seconds(9)});

  SimConfig file = mem;
  file.wal_dir = fresh_dir("memvsfile");

  const SimResult mem_result = run_simulation(mem);
  const SimResult file_result = run_simulation(file);

  EXPECT_EQ(mem_result.committed_tps, file_result.committed_tps);
  EXPECT_EQ(mem_result.max_round, file_result.max_round);
  EXPECT_EQ(mem_result.wal_replayed_blocks, file_result.wal_replayed_blocks);
  ASSERT_EQ(mem_result.sequences.size(), file_result.sequences.size());
  for (std::size_t v = 0; v < mem_result.sequences.size(); ++v) {
    EXPECT_EQ(mem_result.sequences[v], file_result.sequences[v]) << "validator " << v;
  }
}

TEST(Recovery, GroupCommitRestartFromFileWalPreservesTheContract) {
  // Same crash/restart scenario as above, but the WAL runs the group-commit
  // model: records land in groups behind a deferred flush, proposals
  // broadcast only after their covering flush, and the crash drops the
  // staged (non-durable) tail. The recovery contract must be intact: the
  // replayed prefix rebuilds the proposer round, nobody equivocates, and the
  // log replays cleanly (group boundaries are invisible to replay).
  SimConfig config = recovery_config();
  config.wal_dir = fresh_dir("groupwal");
  config.wal_group_commit = true;
  config.wal_flush_interval = millis(2);
  config.restarts.push_back({.id = 2, .crash_at = seconds(6), .restart_at = seconds(9)});

  const SimResult result = run_simulation(config);

  EXPECT_GT(result.wal_groups_flushed, 50u);  // groups actually formed
  EXPECT_GT(result.wal_replayed_blocks, 50u);
  EXPECT_EQ(result.equivocation_cells, 0u);
  expect_prefix_consistent(result, "group-commit file-wal restart");
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  EXPECT_GT(result.sequences[2].size(), result.sequences[0].size() / 2)
      << "restarted validator should resume delivering";

  // The group-committed log is indistinguishable from an inline one at
  // replay time: every validator's file parses end to end.
  for (ValidatorId v = 0; v < config.n; ++v) {
    FileWal::Visitor visitor;
    visitor.on_block = [](BlockPtr, bool) {};
    const auto replay = FileWal::replay(
        (std::filesystem::path(config.wal_dir) / ("v" + std::to_string(v) + ".wal"))
            .string(),
        visitor);
    EXPECT_GT(replay.records, 0u) << "validator " << v;
    EXPECT_FALSE(replay.corrupt_tail) << "validator " << v;
  }
}

TEST(Recovery, CrashWithoutRestartIsToleratedAsFault) {
  SimConfig config = recovery_config();
  config.restarts.push_back({.id = 3, .crash_at = seconds(5), .restart_at = 0});

  const SimResult result = run_simulation(config);

  // n=4 tolerates f=1: the survivors keep committing at full load.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  EXPECT_EQ(result.equivocation_cells, 0u);
  expect_prefix_consistent(result, "crash-only");

  // The dead validator's sequence froze at the crash; survivors moved on.
  EXPECT_LT(result.sequences[3].size(), result.sequences[0].size());
}

TEST(Recovery, StaggeredRestartsOfTwoValidators) {
  // Two validators fail at different times with disjoint outages. At any
  // instant at most one is down, so the cluster stays live throughout, and
  // both recoveries must preserve agreement.
  SimConfig config = recovery_config();
  config.wal_dir = fresh_dir("staggered");
  config.restarts.push_back({.id = 1, .crash_at = seconds(4), .restart_at = seconds(7)});
  config.restarts.push_back({.id = 2, .crash_at = seconds(9), .restart_at = seconds(12)});

  const SimResult result = run_simulation(config);

  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.4);
  expect_prefix_consistent(result, "staggered restarts");
}

TEST(Recovery, RestartUnderWanAndHigherLoad) {
  SimConfig config = recovery_config();
  config.wan = true;
  config.n = 10;
  config.load_tps = 5'000;
  config.duration = seconds(15);
  config.wal_dir = fresh_dir("wan");
  config.restarts.push_back({.id = 4, .crash_at = seconds(5), .restart_at = seconds(8)});

  const SimResult result = run_simulation(config);

  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  expect_prefix_consistent(result, "wan restart");
}

TEST(Recovery, LateJoinerCatchesUpFromPeers) {
  // A validator that crashes at t=0 (before doing anything, WAL empty) and
  // restarts at t=6 is effectively a late joiner: everything it needs must
  // come from peers through the synchronizer's fetch path.
  SimConfig config = recovery_config();
  config.restarts.push_back({.id = 2, .crash_at = millis(1), .restart_at = seconds(6)});

  const SimResult result = run_simulation(config);

  EXPECT_EQ(result.equivocation_cells, 0u);
  expect_prefix_consistent(result, "late joiner");
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  // The late joiner delivers a substantial share of what its peers did.
  ASSERT_EQ(result.sequences.size(), 4u);
  EXPECT_GT(result.sequences[2].size(), result.sequences[0].size() / 2);
  // And the catch-up actually used the fetch path.
  EXPECT_GT(result.fetch_requests, 0u);
}

// --- Checkpoint & state-sync scenarios (checkpoint/) -------------------------

// Mahi-Mahi-5 with a GC horizon: peers prune, so a validator that misses
// more than ~gc_depth rounds can no longer catch up through the fetch path
// alone. The late-joiner scenarios use a tight horizon (outage >> horizon,
// forcing snapshot catch-up); the plain-restart scenarios use a deep one
// (outage < horizon, so recovery is checkpoint + suffix + live fetch and
// the delivered sequence stays one contiguous window).
SimConfig gc_config(Round gc_depth = 10) {
  SimConfig config = recovery_config();
  CommitterOptions options = mahi_mahi_5(2);
  options.gc_depth = gc_depth;
  config.committer_override = options;
  return config;
}

// The restarted/late validator's sequence restarts at its recovered
// checkpoint head, so instead of prefix equality from index 0 we check that
// it is a contiguous window of a peer's sequence.
void expect_suffix_consistent(const SimResult& result, ValidatorId joiner,
                              ValidatorId peer, const std::string& label) {
  const auto& joined = result.sequences[joiner];
  const auto& reference = result.sequences[peer];
  ASSERT_FALSE(joined.empty()) << label << ": joiner delivered nothing";
  const auto start = std::find(reference.begin(), reference.end(), joined.front());
  ASSERT_NE(start, reference.end())
      << label << ": joiner's first delivery unknown to peer " << peer;
  const std::size_t offset = static_cast<std::size_t>(start - reference.begin());
  const std::size_t common = std::min(joined.size(), reference.size() - offset);
  for (std::size_t k = 0; k < common; ++k) {
    ASSERT_EQ(joined[k], reference[offset + k])
        << label << ": diverges at suffix index " << k;
  }
}

TEST(Recovery, LateJoinerBeyondGcHorizonStallsWithoutCheckpoints) {
  // Pinned behavior this subsystem exists to fix: with GC on and no
  // checkpoints, a validator that rejoins after everyone's horizon passed
  // its knowledge keeps asking for pruned ancestors (the cores even emit
  // snapshot requests — there is just no snapshot to serve) and never
  // delivers anything again. The cluster tolerates it as a fault; the
  // joiner itself is lost.
  SimConfig config = gc_config();
  config.restarts.push_back({.id = 2, .crash_at = millis(1), .restart_at = seconds(8)});

  const SimResult result = run_simulation(config);

  EXPECT_EQ(result.checkpoints_written, 0u);
  EXPECT_EQ(result.snapshot_catchups, 0u);
  EXPECT_GT(result.checkpoint_requests, 0u) << "the joiner is stuck and asking";
  ASSERT_EQ(result.sequences.size(), 4u);
  EXPECT_TRUE(result.sequences[2].empty()) << "stalled: nothing ever delivered";
  // The other three keep the cluster healthy.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  EXPECT_EQ(result.equivocation_cells, 0u);
}

TEST(Recovery, LateJoinerBeyondGcHorizonCatchesUpViaSnapshot) {
  // Same scenario with checkpointing on: the joiner's ancestry walk hits the
  // peers' horizons, the horizon notice flips it into snapshot catch-up, it
  // installs a peer checkpoint (real codec + verification over the
  // simulated link) and delivers in agreement from the checkpoint head on.
  SimConfig config = gc_config();
  config.checkpoint_interval = 5;
  config.restarts.push_back({.id = 2, .crash_at = millis(1), .restart_at = seconds(8)});

  const SimResult result = run_simulation(config);

  EXPECT_GT(result.checkpoints_written, 0u);
  EXPECT_GE(result.snapshot_catchups, 1u) << "the snapshot path must have fired";
  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  expect_suffix_consistent(result, 2, 0, "snapshot catch-up");
  // The joiner is genuinely back: it delivered a meaningful share of the
  // post-restart window, not just the installed state.
  EXPECT_GT(result.sequences[2].size(), 50u);
}

TEST(Recovery, SegmentedWalRestartRecoversFromCheckpointPlusSuffix) {
  // A mid-run crash/restart under the segmented layout: recovery installs
  // the newest on-disk checkpoint and replays only the segment suffix, and
  // the restarted validator rejoins in agreement. The on-disk footprint
  // stays bounded: retired segments are gone, at most two checkpoints kept.
  SimConfig config = gc_config(/*gc_depth=*/40);
  config.checkpoint_interval = 5;
  config.wal_dir = fresh_dir("segmented");
  config.wal_segment_bytes = 64 * 1024;  // small: force plenty of rolls
  config.restarts.push_back({.id = 2, .crash_at = seconds(6), .restart_at = seconds(9)});

  const SimResult result = run_simulation(config);

  EXPECT_GT(result.checkpoints_written, 0u);
  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  expect_suffix_consistent(result, 2, 0, "segmented restart");

  // Bounded disk: every validator's directory holds a retired-segment
  // manifest base > 0 and at most two checkpoint files.
  for (ValidatorId v = 0; v < config.n; ++v) {
    const std::string dir =
        config.wal_dir + "/v" + std::to_string(v) + ".wal";
    EXPECT_GT(SegmentedWal::read_manifest(dir), 0u) << "v" << v;
    EXPECT_LE(CheckpointStore::list(dir).size(), 2u) << "v" << v;
    // Retired segment files are actually deleted.
    const auto segments = SegmentedWal::list_segments(dir);
    ASSERT_FALSE(segments.empty()) << "v" << v;
    EXPECT_GE(segments.front(), SegmentedWal::read_manifest(dir)) << "v" << v;
  }
}

TEST(Recovery, CrashDuringCheckpointFallsBackWithoutDivergence) {
  // A slow checkpoint write (2 s) guarantees the crash lands mid-checkpoint:
  // the in-flight cut dies with the process (epoch-guarded completion, like
  // a group flush), and recovery falls back to the previous completed
  // checkpoint plus a longer segment suffix — more replay, never divergence.
  SimConfig config = gc_config(/*gc_depth=*/40);
  config.checkpoint_interval = 5;
  config.checkpoint_write_delay = seconds(2);
  config.wal_dir = fresh_dir("midckpt");
  config.wal_segment_bytes = 64 * 1024;
  config.restarts.push_back({.id = 1, .crash_at = seconds(7), .restart_at = seconds(10)});

  const SimResult result = run_simulation(config);

  EXPECT_GT(result.checkpoints_written, 0u);
  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.4);
  ASSERT_EQ(result.sequences.size(), 4u);
  expect_suffix_consistent(result, 1, 0, "crash during checkpoint");
}

TEST(Recovery, DeltaChainCatchUpFormsCertsAndStaysDeterministic) {
  // Incremental-checkpoint model on: after each base, up to max_deltas cuts
  // land as delta links (real checkpoint/delta.h codec), catch-up ships the
  // whole base+delta chain, and every completed cut collects a 2f+1
  // certificate through the real multisig path. The run must still be
  // bit-deterministic under a fixed seed — the delta/cert machinery adds
  // events but no nondeterminism.
  SimConfig config = gc_config();
  config.checkpoint_interval = 5;
  config.checkpoint_max_deltas = 4;
  config.cert_collect_delay = millis(2);
  config.restarts.push_back({.id = 2, .crash_at = millis(1), .restart_at = seconds(8)});

  const SimResult result = run_simulation(config);

  EXPECT_GT(result.checkpoints_written, 0u);
  EXPECT_GT(result.checkpoint_delta_cuts, 0u) << "no cut ever landed as a delta";
  EXPECT_GT(result.checkpoint_certs_formed, 0u) << "no certificate aggregated";
  EXPECT_GE(result.snapshot_catchups, 1u) << "chain catch-up must have fired";
  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  expect_suffix_consistent(result, 2, 0, "delta-chain catch-up");

  const SimResult again = run_simulation(config);
  EXPECT_EQ(result.committed_tps, again.committed_tps);
  EXPECT_EQ(result.checkpoints_written, again.checkpoints_written);
  EXPECT_EQ(result.checkpoint_delta_cuts, again.checkpoint_delta_cuts);
  EXPECT_EQ(result.checkpoint_certs_formed, again.checkpoint_certs_formed);
  EXPECT_EQ(result.snapshot_catchups, again.snapshot_catchups);
  EXPECT_EQ(result.sequences, again.sequences);
}

TEST(Recovery, CertShareWithholdingBeyondFBlocksEveryCertificate) {
  // Byzantine share withholding: with two of four validators never
  // endorsing, at most 2 shares exist per cut — below the 2f+1 = 3
  // threshold — so no certificate ever forms. Checkpointing itself (and
  // uncertified catch-up, the legacy trust path) must keep working.
  SimConfig config = gc_config();
  config.checkpoint_interval = 5;
  config.checkpoint_max_deltas = 4;
  config.cert_collect_delay = millis(2);
  config.cert_withholding = {0, 1};
  config.restarts.push_back({.id = 2, .crash_at = millis(1), .restart_at = seconds(8)});

  const SimResult result = run_simulation(config);

  EXPECT_GT(result.checkpoints_written, 0u);
  EXPECT_EQ(result.checkpoint_certs_formed, 0u)
      << "a certificate aggregated despite a blocked quorum";
  EXPECT_GE(result.snapshot_catchups, 1u);
  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  expect_suffix_consistent(result, 2, 0, "withheld-cert catch-up");
}

TEST(Recovery, WalFilesArePerValidatorAndNonEmpty) {
  SimConfig config = recovery_config();
  config.duration = seconds(6);
  config.warmup = seconds(1);
  config.wal_dir = fresh_dir("files");
  config.restarts.push_back({.id = 0, .crash_at = seconds(3), .restart_at = seconds(4)});

  run_simulation(config);

  for (ValidatorId v = 0; v < config.n; ++v) {
    const auto path = std::filesystem::path(config.wal_dir) /
                      ("v" + std::to_string(v) + ".wal");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 0u) << path;
  }

  // The restarted validator's log must replay cleanly end to end.
  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  visitor.on_commit = [](SlotId) {};
  const auto replay = FileWal::replay(
      (std::filesystem::path(config.wal_dir) / "v0.wal").string(), visitor);
  EXPECT_FALSE(replay.corrupt_tail);
  EXPECT_GT(replayed, 0u);
}

}  // namespace
}  // namespace mahimahi::sim
