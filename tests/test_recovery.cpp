// Crash-recovery integration tests (§4: WAL + restart).
//
// A validator crashes mid-run, loses its in-memory state, and rejoins by
// replaying its write-ahead log. The properties under test:
//   * the restarted validator never equivocates (the WAL restored its
//     proposer round before it produced a new block);
//   * agreement holds across all validators, the restarted one included
//     (prefix-consistent delivered sequences, Lemmas 5-7);
//   * the cluster keeps committing through the outage and the restarted
//     validator catches back up (liveness).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "sim/harness.h"
#include "wal/wal.h"

namespace mahimahi::sim {
namespace {

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("mahi_recovery_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

SimConfig recovery_config() {
  SimConfig config;
  config.protocol = Protocol::kMahiMahi5;
  config.n = 4;
  config.wan = false;
  config.uniform_latency = millis(25);
  config.load_tps = 1'000;
  config.duration = seconds(18);
  config.warmup = seconds(2);
  config.record_sequences = true;
  config.seed = 21;
  return config;
}

void expect_prefix_consistent(const SimResult& result, const std::string& label) {
  const auto& sequences = result.sequences;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    for (std::size_t j = i + 1; j < sequences.size(); ++j) {
      const std::size_t common = std::min(sequences[i].size(), sequences[j].size());
      for (std::size_t k = 0; k < common; ++k) {
        ASSERT_EQ(sequences[i][k], sequences[j][k])
            << label << ": validators " << i << " and " << j << " diverge at " << k;
      }
    }
  }
}

TEST(Recovery, RestartFromFileWalRejoinsWithoutEquivocating) {
  SimConfig config = recovery_config();
  config.wal_dir = fresh_dir("filewal");
  config.restarts.push_back({.id = 2, .crash_at = seconds(6), .restart_at = seconds(9)});

  const SimResult result = run_simulation(config);

  // The WAL was actually replayed, and replay restored enough state that
  // the restarted validator produced no conflicting block for any round it
  // had already proposed.
  EXPECT_GT(result.wal_replayed_blocks, 50u);
  EXPECT_EQ(result.equivocation_cells, 0u);

  // Agreement across all four validators, including the restarted one.
  expect_prefix_consistent(result, "file-wal restart");

  // Liveness: the cluster kept committing (3 of 4 validators suffice), and
  // the restarted validator caught up to within a few waves of its peers.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  const std::size_t peer_len = result.sequences[0].size();
  EXPECT_GT(peer_len, 0u);
  EXPECT_GT(result.sequences[2].size(), peer_len / 2)
      << "restarted validator should resume delivering";
}

TEST(Recovery, RestartFromInMemoryLogMatchesFileWal) {
  // Same scenario without wal_dir: the harness replays its in-memory block
  // log. Outcomes must be byte-identical to the file path (the sim is
  // deterministic and the WAL round-trip is lossless).
  SimConfig mem = recovery_config();
  mem.restarts.push_back({.id = 2, .crash_at = seconds(6), .restart_at = seconds(9)});

  SimConfig file = mem;
  file.wal_dir = fresh_dir("memvsfile");

  const SimResult mem_result = run_simulation(mem);
  const SimResult file_result = run_simulation(file);

  EXPECT_EQ(mem_result.committed_tps, file_result.committed_tps);
  EXPECT_EQ(mem_result.max_round, file_result.max_round);
  EXPECT_EQ(mem_result.wal_replayed_blocks, file_result.wal_replayed_blocks);
  ASSERT_EQ(mem_result.sequences.size(), file_result.sequences.size());
  for (std::size_t v = 0; v < mem_result.sequences.size(); ++v) {
    EXPECT_EQ(mem_result.sequences[v], file_result.sequences[v]) << "validator " << v;
  }
}

TEST(Recovery, GroupCommitRestartFromFileWalPreservesTheContract) {
  // Same crash/restart scenario as above, but the WAL runs the group-commit
  // model: records land in groups behind a deferred flush, proposals
  // broadcast only after their covering flush, and the crash drops the
  // staged (non-durable) tail. The recovery contract must be intact: the
  // replayed prefix rebuilds the proposer round, nobody equivocates, and the
  // log replays cleanly (group boundaries are invisible to replay).
  SimConfig config = recovery_config();
  config.wal_dir = fresh_dir("groupwal");
  config.wal_group_commit = true;
  config.wal_flush_interval = millis(2);
  config.restarts.push_back({.id = 2, .crash_at = seconds(6), .restart_at = seconds(9)});

  const SimResult result = run_simulation(config);

  EXPECT_GT(result.wal_groups_flushed, 50u);  // groups actually formed
  EXPECT_GT(result.wal_replayed_blocks, 50u);
  EXPECT_EQ(result.equivocation_cells, 0u);
  expect_prefix_consistent(result, "group-commit file-wal restart");
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  ASSERT_EQ(result.sequences.size(), 4u);
  EXPECT_GT(result.sequences[2].size(), result.sequences[0].size() / 2)
      << "restarted validator should resume delivering";

  // The group-committed log is indistinguishable from an inline one at
  // replay time: every validator's file parses end to end.
  for (ValidatorId v = 0; v < config.n; ++v) {
    FileWal::Visitor visitor;
    visitor.on_block = [](BlockPtr, bool) {};
    const auto replay = FileWal::replay(
        (std::filesystem::path(config.wal_dir) / ("v" + std::to_string(v) + ".wal"))
            .string(),
        visitor);
    EXPECT_GT(replay.records, 0u) << "validator " << v;
    EXPECT_FALSE(replay.corrupt_tail) << "validator " << v;
  }
}

TEST(Recovery, CrashWithoutRestartIsToleratedAsFault) {
  SimConfig config = recovery_config();
  config.restarts.push_back({.id = 3, .crash_at = seconds(5), .restart_at = 0});

  const SimResult result = run_simulation(config);

  // n=4 tolerates f=1: the survivors keep committing at full load.
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  EXPECT_EQ(result.equivocation_cells, 0u);
  expect_prefix_consistent(result, "crash-only");

  // The dead validator's sequence froze at the crash; survivors moved on.
  EXPECT_LT(result.sequences[3].size(), result.sequences[0].size());
}

TEST(Recovery, StaggeredRestartsOfTwoValidators) {
  // Two validators fail at different times with disjoint outages. At any
  // instant at most one is down, so the cluster stays live throughout, and
  // both recoveries must preserve agreement.
  SimConfig config = recovery_config();
  config.wal_dir = fresh_dir("staggered");
  config.restarts.push_back({.id = 1, .crash_at = seconds(4), .restart_at = seconds(7)});
  config.restarts.push_back({.id = 2, .crash_at = seconds(9), .restart_at = seconds(12)});

  const SimResult result = run_simulation(config);

  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.4);
  expect_prefix_consistent(result, "staggered restarts");
}

TEST(Recovery, RestartUnderWanAndHigherLoad) {
  SimConfig config = recovery_config();
  config.wan = true;
  config.n = 10;
  config.load_tps = 5'000;
  config.duration = seconds(15);
  config.wal_dir = fresh_dir("wan");
  config.restarts.push_back({.id = 4, .crash_at = seconds(5), .restart_at = seconds(8)});

  const SimResult result = run_simulation(config);

  EXPECT_EQ(result.equivocation_cells, 0u);
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  expect_prefix_consistent(result, "wan restart");
}

TEST(Recovery, LateJoinerCatchesUpFromPeers) {
  // A validator that crashes at t=0 (before doing anything, WAL empty) and
  // restarts at t=6 is effectively a late joiner: everything it needs must
  // come from peers through the synchronizer's fetch path.
  SimConfig config = recovery_config();
  config.restarts.push_back({.id = 2, .crash_at = millis(1), .restart_at = seconds(6)});

  const SimResult result = run_simulation(config);

  EXPECT_EQ(result.equivocation_cells, 0u);
  expect_prefix_consistent(result, "late joiner");
  EXPECT_GT(result.committed_tps, config.load_tps * 0.5);
  // The late joiner delivers a substantial share of what its peers did.
  ASSERT_EQ(result.sequences.size(), 4u);
  EXPECT_GT(result.sequences[2].size(), result.sequences[0].size() / 2);
  // And the catch-up actually used the fetch path.
  EXPECT_GT(result.fetch_requests, 0u);
}

TEST(Recovery, WalFilesArePerValidatorAndNonEmpty) {
  SimConfig config = recovery_config();
  config.duration = seconds(6);
  config.warmup = seconds(1);
  config.wal_dir = fresh_dir("files");
  config.restarts.push_back({.id = 0, .crash_at = seconds(3), .restart_at = seconds(4)});

  run_simulation(config);

  for (ValidatorId v = 0; v < config.n; ++v) {
    const auto path = std::filesystem::path(config.wal_dir) /
                      ("v" + std::to_string(v) + ".wal");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 0u) << path;
  }

  // The restarted validator's log must replay cleanly end to end.
  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  visitor.on_commit = [](SlotId) {};
  const auto replay = FileWal::replay(
      (std::filesystem::path(config.wal_dir) / "v0.wal").string(), visitor);
  EXPECT_FALSE(replay.corrupt_tail);
  EXPECT_GT(replayed, 0u);
}

}  // namespace
}  // namespace mahimahi::sim
