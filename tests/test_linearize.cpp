// Linearization invariants (Algorithm 3, LinearizeSubDags; §3.2 step 5).
//
// The commit sequence is assembled by linearizing each committed leader's
// not-yet-delivered causal history. The invariants under test:
//   * causal order — a parent is always delivered before any child;
//   * exactly-once — no block appears in two sub-DAGs (Integrity, Thm. 2);
//   * leader-last — the leader closes its own sub-DAG;
//   * determinism — the order is a pure function of the DAG content, not of
//     insertion order or pointer identity;
//   * coverage — everything in the committed leader's causal history that
//     was not delivered earlier is delivered now.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/committer.h"
#include "core/linearize.h"
#include "sim/dag_builder.h"

namespace mahimahi {
namespace {

// Delivered positions must respect the parent relation.
void expect_causal(const std::vector<BlockPtr>& sequence) {
  std::map<Digest, std::size_t> position;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    position.emplace(sequence[i]->digest(), i);
  }
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    for (const auto& parent : sequence[i]->parents()) {
      const auto it = position.find(parent.digest);
      if (it == position.end()) continue;  // delivered in an earlier sub-DAG
      EXPECT_LT(it->second, i) << "child " << sequence[i]->ref().to_string()
                               << " delivered before parent";
    }
  }
}

TEST(Linearize, LeaderOnlySubDagWhenHistoryAlreadyDelivered) {
  DagBuilder builder(4);
  builder.build_fully_connected(3);
  DeliveredMap delivered;
  CommitStats stats;

  // Pre-deliver everything below round 3.
  for (Round r = 0; r <= 2; ++r) {
    for (const auto& block : builder.dag().blocks_at(r)) delivered.emplace(block->digest(), block->round());
  }

  const BlockPtr leader = builder.dag().slot(3, 1).front();
  const auto sub_dag = linearize_sub_dag(builder.dag(), SlotId{3, 0}, leader,
                                         delivered, stats);
  ASSERT_EQ(sub_dag.blocks.size(), 1u);
  EXPECT_EQ(sub_dag.blocks[0]->digest(), leader->digest());
}

TEST(Linearize, LeaderClosesItsSubDag) {
  DagBuilder builder(4);
  builder.build_fully_connected(4);
  DeliveredMap delivered;
  CommitStats stats;

  const BlockPtr leader = builder.dag().slot(4, 2).front();
  const auto sub_dag = linearize_sub_dag(builder.dag(), SlotId{4, 0}, leader,
                                         delivered, stats);
  ASSERT_FALSE(sub_dag.blocks.empty());
  EXPECT_EQ(sub_dag.blocks.back()->digest(), leader->digest());
  expect_causal(sub_dag.blocks);
}

TEST(Linearize, CoversExactlyTheUndeliveredCausalHistory) {
  DagBuilder builder(4);
  builder.build_fully_connected(5);
  DeliveredMap delivered;
  CommitStats stats;

  // First leader at round 3 delivers its full ancestry.
  const BlockPtr first = builder.dag().slot(3, 0).front();
  const auto first_sub = linearize_sub_dag(builder.dag(), SlotId{3, 0}, first,
                                           delivered, stats);
  // Fully-connected DAG: ancestry of a round-3 block = rounds 0..2 complete
  // (16 blocks with genesis) + itself.
  EXPECT_EQ(first_sub.blocks.size(), 13u);  // 3*4 rounds 0..2? see below
  // rounds 0,1,2 have 4 blocks each = 12, plus the leader = 13.

  // Second leader at round 4 must deliver only the round-3 remainder plus
  // itself — nothing already delivered reappears.
  const BlockPtr second = builder.dag().slot(4, 1).front();
  const auto second_sub = linearize_sub_dag(builder.dag(), SlotId{4, 0}, second,
                                            delivered, stats);
  std::set<Digest> first_set;
  for (const auto& block : first_sub.blocks) first_set.insert(block->digest());
  for (const auto& block : second_sub.blocks) {
    EXPECT_FALSE(first_set.contains(block->digest()))
        << block->ref().to_string() << " delivered twice";
  }
  // Remainder: the other three round-3 blocks + the round-4 leader.
  EXPECT_EQ(second_sub.blocks.size(), 4u);
  expect_causal(second_sub.blocks);
}

TEST(Linearize, StatsCountBlocksAndTransactions) {
  DagBuilder builder(4);
  // Give round-1 blocks a batch each so transaction counting is visible.
  std::vector<BlockRef> genesis;
  for (const auto& block : builder.dag().blocks_at(0)) genesis.push_back(block->ref());
  for (ValidatorId v = 0; v < 4; ++v) {
    TxBatch batch;
    batch.id = 100 + v;
    batch.count = 10;
    builder.add_block(v, 1, genesis, {batch});
  }
  builder.add_full_round(2);

  DeliveredMap delivered;
  CommitStats stats;
  const BlockPtr leader = builder.dag().slot(2, 0).front();
  linearize_sub_dag(builder.dag(), SlotId{2, 0}, leader, delivered, stats);
  // 4 genesis + 4 round-1 + leader = 9 blocks, 40 transactions.
  EXPECT_EQ(stats.delivered_blocks, 9u);
  EXPECT_EQ(stats.delivered_transactions, 40u);
}

TEST(Linearize, OrderIsDeterministicAcrossInsertionOrders) {
  // Build the same logical DAG twice with different insertion interleavings
  // (DagBuilder inserts in call order) and compare the full delivered
  // sequence from the committer.
  const CommitterOptions options = mahi_mahi_5(2);

  auto deliver_all = [&](DagBuilder& builder) {
    Committer committer(builder.dag(), builder.committee(), options);
    std::vector<BlockRef> out;
    for (const auto& sub_dag : committer.try_commit()) {
      for (const auto& block : sub_dag.blocks) out.push_back(block->ref());
    }
    return out;
  };

  DagBuilder forward(4);
  for (Round r = 1; r <= 12; ++r) {
    forward.add_full_round(r, {0, 1, 2, 3});
  }
  DagBuilder reversed(4);
  for (Round r = 1; r <= 12; ++r) {
    reversed.add_full_round(r, {3, 2, 1, 0});
  }

  const auto a = deliver_all(forward);
  const auto b = deliver_all(reversed);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Linearize, EquivocatingAncestorsAreBothDeliveredWhenReachable) {
  // Two equivocating round-1 blocks by validator 0, both referenced by
  // later blocks: both are part of the causal history and both must be
  // delivered exactly once (Integrity is per-block, not per-slot).
  DagBuilder builder(4);
  std::vector<BlockRef> genesis;
  for (const auto& block : builder.dag().blocks_at(0)) genesis.push_back(block->ref());

  const BlockPtr twin_a = builder.add_block(0, 1, genesis);
  TxBatch marker;
  marker.id = 999;
  const BlockPtr twin_b = builder.add_block(0, 1, genesis, {marker});
  const BlockPtr b1 = builder.add_block(1, 1, genesis);
  const BlockPtr b2 = builder.add_block(2, 1, genesis);
  const BlockPtr b3 = builder.add_block(3, 1, genesis);

  // Round 2: validator 1 references twin_a, validator 2 references twin_b.
  const BlockPtr c1 = builder.add_block_from(1, 2, {b1, twin_a, b2, b3});
  const BlockPtr c2 = builder.add_block_from(2, 2, {b2, twin_b, b1, b3});
  const BlockPtr c3 = builder.add_block_from(3, 2, {b3, b1, b2});

  // Round 3 leader references everything.
  const BlockPtr leader = builder.add_block_from(0, 3, {c1, c2, c3});

  DeliveredMap delivered;
  CommitStats stats;
  const auto sub_dag =
      linearize_sub_dag(builder.dag(), SlotId{3, 0}, leader, delivered, stats);

  std::set<Digest> seen;
  for (const auto& block : sub_dag.blocks) {
    EXPECT_TRUE(seen.insert(block->digest()).second);
  }
  EXPECT_TRUE(seen.contains(twin_a->digest()));
  EXPECT_TRUE(seen.contains(twin_b->digest()));
  expect_causal(sub_dag.blocks);
}

TEST(Linearize, UnreachableBlocksAreNotDelivered) {
  // A round-1 block that no later block references is outside every
  // leader's causal history and must never be delivered.
  DagBuilder builder(4);
  std::vector<BlockRef> genesis;
  for (const auto& block : builder.dag().blocks_at(0)) genesis.push_back(block->ref());

  const BlockPtr orphan = builder.add_block(0, 1, genesis);
  const BlockPtr b1 = builder.add_block(1, 1, genesis);
  const BlockPtr b2 = builder.add_block(2, 1, genesis);
  const BlockPtr b3 = builder.add_block(3, 1, genesis);
  const BlockPtr leader = builder.add_block_from(1, 2, {b1, b2, b3});

  DeliveredMap delivered;
  CommitStats stats;
  const auto sub_dag =
      linearize_sub_dag(builder.dag(), SlotId{2, 0}, leader, delivered, stats);
  for (const auto& block : sub_dag.blocks) {
    EXPECT_NE(block->digest(), orphan->digest());
  }
}

}  // namespace
}  // namespace mahimahi
