// WAL tests: append/replay round-trips, torn-write recovery, corruption
// detection, and full validator crash-recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "validator/validator.h"
#include "wal/wal.h"

namespace mahimahi {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : setup_(Committee::make_test(4)) {
    path_ = std::filesystem::temp_directory_path() /
            ("mahi_wal_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  ~WalTest() override { std::filesystem::remove(path_); }

  Block make_block(ValidatorId author, std::uint64_t marker) {
    std::vector<BlockRef> refs;
    for (ValidatorId v = 0; v < 4; ++v) {
      refs.push_back(Block::genesis(v, setup_.committee.coin()).ref());
    }
    TxBatch batch;
    batch.id = marker;
    return Block::make(author, 1, refs, {batch},
                       setup_.committee.coin().share(author, 1),
                       setup_.keypairs[author].private_key);
  }

  Committee::TestSetup setup_;
  std::filesystem::path path_;
};

TEST_F(WalTest, AppendAndReplayBlocks) {
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(0, 100), /*own=*/true);
    wal.append_block(make_block(1, 200), /*own=*/false);
    wal.append_commit(SlotId{1, 0});
    wal.sync();
  }

  std::vector<std::pair<Digest, bool>> blocks;
  std::vector<SlotId> commits;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool own) {
    blocks.emplace_back(block->digest(), own);
  };
  visitor.on_commit = [&](SlotId slot) { commits.push_back(slot); };
  const auto result = FileWal::replay(path_.string(), visitor);

  EXPECT_EQ(result.records, 3u);
  EXPECT_FALSE(result.corrupt_tail);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].first, make_block(0, 100).digest());
  EXPECT_TRUE(blocks[0].second);
  EXPECT_FALSE(blocks[1].second);
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0], (SlotId{1, 0}));
}

TEST_F(WalTest, ReplayOfMissingFileIsEmpty) {
  const auto result = FileWal::replay(path_.string(), {});
  EXPECT_EQ(result.records, 0u);
  EXPECT_FALSE(result.corrupt_tail);
}

TEST_F(WalTest, TornTailIsDiscardedAndTruncated) {
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(0, 1), true);
    wal.append_block(make_block(1, 2), false);
    wal.sync();
  }
  // Simulate a torn write: chop bytes off the tail.
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 7);

  int replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = FileWal::replay(path_.string(), visitor, true);
  EXPECT_EQ(result.records, 1u);
  EXPECT_TRUE(result.corrupt_tail);
  EXPECT_EQ(replayed, 1);
  // The file was truncated to the valid prefix; appends work cleanly.
  EXPECT_EQ(std::filesystem::file_size(path_), result.valid_bytes);
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(2, 3), false);
  }
  replayed = 0;
  const auto after = FileWal::replay(path_.string(), visitor, true);
  EXPECT_EQ(after.records, 2u);
  EXPECT_FALSE(after.corrupt_tail);
}

TEST_F(WalTest, CorruptMiddleByteStopsReplay) {
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(0, 1), true);
    wal.append_block(make_block(1, 2), false);
  }
  // Flip a byte inside the second record's payload.
  const auto size = std::filesystem::file_size(path_);
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  std::fseek(f, static_cast<long>(size - 10), SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, static_cast<long>(size - 10), SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  int replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = FileWal::replay(path_.string(), visitor, false);
  EXPECT_EQ(result.records, 1u);
  EXPECT_TRUE(result.corrupt_tail);
}

TEST_F(WalTest, ValidatorCrashRecoveryDoesNotEquivocate) {
  // A validator logs its own proposal, "crashes", and a new instance
  // replays the WAL: it must adopt the logged round and not produce a
  // conflicting round-1 block.
  ValidatorConfig config;
  config.id = 0;
  config.committer = mahi_mahi_5(1);

  BlockPtr first_proposal;
  {
    FileWal wal(path_.string());
    ValidatorCore validator(setup_.committee, setup_.keypairs[0].private_key, config);
    const Actions actions = validator.on_tick(0);
    for (const auto& block : actions.inserted) {
      wal.append_block(*block, block->author() == 0);
    }
    first_proposal = actions.broadcast.at(0);
  }

  ValidatorCore recovered(setup_.committee, setup_.keypairs[0].private_key, config);
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool) { recovered.recover_block(block); };
  FileWal::replay(path_.string(), visitor);

  EXPECT_EQ(recovered.last_proposed_round(), 1u);
  const Actions tick = recovered.on_tick(1);
  for (const auto& block : tick.broadcast) {
    EXPECT_NE(block->round(), 1u) << "recovered validator re-proposed round 1";
  }
  EXPECT_TRUE(recovered.dag().contains(first_proposal->digest()));
}

TEST_F(WalTest, LargeLogReplaysCompletely) {
  constexpr int kBlocks = 200;
  {
    FileWal wal(path_.string());
    for (int i = 0; i < kBlocks; ++i) {
      wal.append_block(make_block(i % 4, 1000 + i), i % 4 == 0);
    }
  }
  int replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = FileWal::replay(path_.string(), visitor);
  EXPECT_EQ(replayed, kBlocks);
  EXPECT_FALSE(result.corrupt_tail);
}

}  // namespace
}  // namespace mahimahi
