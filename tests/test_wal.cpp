// WAL tests: append/replay round-trips, torn-write recovery, corruption
// detection, full validator crash-recovery, and the group-commit decorator
// (byte-identity with the inline log, durability acks, torn groups).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>

#include "common/rng.h"
#include "validator/validator.h"
#include "wal/group_commit_wal.h"
#include "wal/wal.h"
#include "wal/wal_ring.h"

namespace mahimahi {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : setup_(Committee::make_test(4)) {
    path_ = std::filesystem::temp_directory_path() /
            ("mahi_wal_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  ~WalTest() override { std::filesystem::remove(path_); }

  Block make_block(ValidatorId author, std::uint64_t marker) {
    std::vector<BlockRef> refs;
    for (ValidatorId v = 0; v < 4; ++v) {
      refs.push_back(Block::genesis(v, setup_.committee.coin()).ref());
    }
    TxBatch batch;
    batch.id = marker;
    return Block::make(author, 1, refs, {batch},
                       setup_.committee.coin().share(author, 1),
                       setup_.keypairs[author].private_key);
  }

  Committee::TestSetup setup_;
  std::filesystem::path path_;
};

TEST_F(WalTest, AppendAndReplayBlocks) {
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(0, 100), /*own=*/true);
    wal.append_block(make_block(1, 200), /*own=*/false);
    wal.append_commit(SlotId{1, 0});
    wal.sync();
  }

  std::vector<std::pair<Digest, bool>> blocks;
  std::vector<SlotId> commits;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool own) {
    blocks.emplace_back(block->digest(), own);
  };
  visitor.on_commit = [&](SlotId slot) { commits.push_back(slot); };
  const auto result = FileWal::replay(path_.string(), visitor);

  EXPECT_EQ(result.records, 3u);
  EXPECT_FALSE(result.corrupt_tail);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].first, make_block(0, 100).digest());
  EXPECT_TRUE(blocks[0].second);
  EXPECT_FALSE(blocks[1].second);
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0], (SlotId{1, 0}));
}

TEST_F(WalTest, ReplayOfMissingFileIsEmpty) {
  const auto result = FileWal::replay(path_.string(), {});
  EXPECT_EQ(result.records, 0u);
  EXPECT_FALSE(result.corrupt_tail);
}

TEST_F(WalTest, TornTailIsDiscardedAndTruncated) {
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(0, 1), true);
    wal.append_block(make_block(1, 2), false);
    wal.sync();
  }
  // Simulate a torn write: chop bytes off the tail.
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 7);

  int replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = FileWal::replay(path_.string(), visitor, true);
  EXPECT_EQ(result.records, 1u);
  EXPECT_TRUE(result.corrupt_tail);
  EXPECT_EQ(replayed, 1);
  // The file was truncated to the valid prefix; appends work cleanly.
  EXPECT_EQ(std::filesystem::file_size(path_), result.valid_bytes);
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(2, 3), false);
  }
  replayed = 0;
  const auto after = FileWal::replay(path_.string(), visitor, true);
  EXPECT_EQ(after.records, 2u);
  EXPECT_FALSE(after.corrupt_tail);
}

TEST_F(WalTest, CorruptMiddleByteStopsReplay) {
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(0, 1), true);
    wal.append_block(make_block(1, 2), false);
  }
  // Flip a byte inside the second record's payload.
  const auto size = std::filesystem::file_size(path_);
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  std::fseek(f, static_cast<long>(size - 10), SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, static_cast<long>(size - 10), SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  int replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = FileWal::replay(path_.string(), visitor, false);
  EXPECT_EQ(result.records, 1u);
  EXPECT_TRUE(result.corrupt_tail);
}

TEST_F(WalTest, ValidatorCrashRecoveryDoesNotEquivocate) {
  // A validator logs its own proposal, "crashes", and a new instance
  // replays the WAL: it must adopt the logged round and not produce a
  // conflicting round-1 block.
  ValidatorConfig config;
  config.id = 0;
  config.committer = mahi_mahi_5(1);

  BlockPtr first_proposal;
  {
    FileWal wal(path_.string());
    ValidatorCore validator(setup_.committee, setup_.keypairs[0].private_key, config);
    const Actions actions = validator.on_tick(0);
    for (const auto& block : actions.inserted) {
      wal.append_block(*block, block->author() == 0);
    }
    first_proposal = actions.broadcast.at(0);
  }

  ValidatorCore recovered(setup_.committee, setup_.keypairs[0].private_key, config);
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr block, bool) { recovered.recover_block(block); };
  FileWal::replay(path_.string(), visitor);

  EXPECT_EQ(recovered.last_proposed_round(), 1u);
  const Actions tick = recovered.on_tick(1);
  for (const auto& block : tick.broadcast) {
    EXPECT_NE(block->round(), 1u) << "recovered validator re-proposed round 1";
  }
  EXPECT_TRUE(recovered.dag().contains(first_proposal->digest()));
}

TEST(NullWalTest, DurabilityAckIsSynchronous) {
  // The runtime gates proposal broadcast on this ack; a NullWal that
  // deferred it would wedge proposals whenever wal_group_commit is set
  // without a wal_path.
  NullWal wal;
  bool ran = false;
  wal.on_durable([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST_F(WalTest, FileWalDurabilityAckIsSynchronous) {
  FileWal wal(path_.string());
  wal.append_block(make_block(0, 1), true);
  bool ran = false;
  wal.on_durable([&] { ran = true; });
  EXPECT_TRUE(ran);
}

// Reads a file fully into memory for byte-level comparisons.
Bytes slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

TEST_F(WalTest, GroupCommitLogIsByteIdenticalToInlineLog) {
  // Property: for ANY flush boundaries — randomized here via the byte
  // budget, the flush interval, and mid-stream durability barriers — the
  // group-committed log is byte-for-byte the log the inline FileWal writes
  // for the same append sequence. Recovery therefore cannot tell the two
  // apart.
  Rng rng(41);
  for (int trial = 0; trial < 6; ++trial) {
    const auto inline_path = path_.string() + ".inline";
    const auto group_path = path_.string() + ".group";
    std::filesystem::remove(inline_path);
    std::filesystem::remove(group_path);

    // A mixed record sequence, same for both logs.
    std::vector<std::pair<Block, bool>> blocks;
    std::vector<SlotId> commits;
    const int records = 8 + static_cast<int>(rng.uniform(25));
    {
      FileWal inline_wal(inline_path);
      GroupCommitWalOptions options;
      options.flush_interval =
          static_cast<TimeMicros>(rng.uniform(3) * 200);  // 0 / 200us / 400us
      options.group_byte_budget = 1 + rng.uniform(4096);
      GroupCommitWal group_wal(std::make_unique<FileWal>(group_path), options);

      for (int i = 0; i < records; ++i) {
        if (rng.uniform(4) == 0) {
          const SlotId slot{rng.uniform(100), static_cast<std::uint32_t>(rng.uniform(3))};
          inline_wal.append_commit(slot);
          group_wal.append_commit(slot);
        } else {
          const Block block = make_block(static_cast<ValidatorId>(rng.uniform(4)),
                                         1000 * trial + i);
          const bool own = rng.uniform(2) == 0;
          inline_wal.append_block(block, own);
          group_wal.append_block(block, own);
        }
        if (rng.uniform(8) == 0) group_wal.sync();  // random durability barrier
      }
      inline_wal.sync();
      group_wal.sync();
      EXPECT_EQ(group_wal.records_appended(), static_cast<std::uint64_t>(records));
      EXPECT_EQ(group_wal.records_flushed(), static_cast<std::uint64_t>(records));
      EXPECT_GE(group_wal.groups_flushed(), 1u);
    }  // both WALs close (group drains via destructor)

    EXPECT_EQ(slurp(inline_path), slurp(group_path)) << "trial " << trial;
    std::filesystem::remove(inline_path);
    std::filesystem::remove(group_path);
  }
}

TEST_F(WalTest, UringGroupFlushLogIsByteIdenticalToClassicLog) {
  // Same property as above, one layer down: a group-commit WAL landing
  // groups through the io_uring write→fsync path must produce byte-for-byte
  // the log of a classic (write + fsync) group-commit WAL, whatever the
  // flush boundaries. Recovery and the torn-tail model carry over unchanged.
  if (!WalUring::supported()) GTEST_SKIP() << "io_uring unavailable";
  Rng rng(43);
  for (int trial = 0; trial < 4; ++trial) {
    const auto classic_path = path_.string() + ".classic";
    const auto uring_path = path_.string() + ".uring";
    std::filesystem::remove(classic_path);
    std::filesystem::remove(uring_path);
    {
      GroupCommitWalOptions options;
      options.flush_interval = static_cast<TimeMicros>(rng.uniform(3) * 200);
      options.group_byte_budget = 1 + rng.uniform(4096);
      GroupCommitWal classic(
          std::make_unique<FileWal>(classic_path, /*fsync_on_sync=*/true), options);
      options.use_io_uring = true;
      GroupCommitWal uring(
          std::make_unique<FileWal>(uring_path, /*fsync_on_sync=*/true), options);
      ASSERT_TRUE(uring.wal_ring_active());

      const int records = 8 + static_cast<int>(rng.uniform(25));
      for (int i = 0; i < records; ++i) {
        if (rng.uniform(4) == 0) {
          const SlotId slot{rng.uniform(100), static_cast<std::uint32_t>(rng.uniform(3))};
          classic.append_commit(slot);
          uring.append_commit(slot);
        } else {
          const Block block = make_block(static_cast<ValidatorId>(rng.uniform(4)),
                                         2000 * trial + i);
          const bool own = rng.uniform(2) == 0;
          classic.append_block(block, own);
          uring.append_block(block, own);
        }
        if (rng.uniform(8) == 0) {
          classic.sync();
          uring.sync();
        }
      }
      classic.sync();
      uring.sync();
      // The ring path really ran, and spent fewer kernel entries than the
      // classic path's write + fsync per group would have.
      EXPECT_GE(uring.groups_flushed(), 1u);
      EXPECT_GT(uring.group_flush_syscalls(), 0u);
      EXPECT_LT(uring.group_flush_syscalls(), 2 * uring.groups_flushed());
    }
    EXPECT_EQ(slurp(classic_path), slurp(uring_path)) << "trial " << trial;
    std::filesystem::remove(classic_path);
    std::filesystem::remove(uring_path);
  }
}

TEST_F(WalTest, GroupCommitDurabilityAcksFireInOrderAfterFlush) {
  GroupCommitWalOptions options;
  options.flush_interval = millis(50);  // force the byte budget to trip first
  options.group_byte_budget = 1;        // every record flushes its group
  GroupCommitWal wal(std::make_unique<FileWal>(path_.string()), options);

  std::mutex mutex;
  std::vector<int> order;
  std::promise<void> all_done;
  for (int i = 0; i < 8; ++i) {
    wal.append_block(make_block(i % 4, 100 + i), false);
    wal.on_durable([&, i] {
      std::lock_guard<std::mutex> g(mutex);
      order.push_back(i);
      if (order.size() == 8) all_done.set_value();
    });
  }
  ASSERT_EQ(all_done.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  std::lock_guard<std::mutex> g(mutex);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Every ack fired only after its record was durable; with a 1-byte budget
  // each record got its own group.
  EXPECT_EQ(wal.records_flushed(), 8u);
  EXPECT_GE(wal.groups_flushed(), 1u);
}

TEST_F(WalTest, GroupCommitTornTailTruncatesCleanlyAtEveryOffset) {
  // Crash model: the machine dies mid-write of the LAST flushed group.
  // Whatever prefix of that group reached the disk, replay must stop at the
  // last complete record and truncate to a clean boundary — never crash,
  // never resurrect a partial record.
  std::vector<Bytes> framed;  // per-record framed bytes, to locate boundaries
  {
    GroupCommitWalOptions options;
    options.flush_interval = 0;
    // Large budget: the final sync lands the last records as one group.
    options.group_byte_budget = 1 << 20;
    GroupCommitWal wal(std::make_unique<FileWal>(path_.string()), options);
    // First group: two records, made durable by a barrier.
    for (int i = 0; i < 2; ++i) {
      const Block block = make_block(i % 4, 10 + i);
      framed.push_back(wal_encode_block_record(block, i == 0));
      wal.append_block(block, i == 0);
    }
    wal.sync();
    // Last group: three records in one flush.
    for (int i = 2; i < 5; ++i) {
      const Block block = make_block(i % 4, 10 + i);
      framed.push_back(wal_encode_block_record(block, false));
      wal.append_block(block, false);
    }
  }  // destructor drains the last group

  const Bytes full = slurp(path_);
  std::vector<std::size_t> boundaries{0};  // byte offsets of record ends
  for (const auto& record : framed) boundaries.push_back(boundaries.back() + record.size());
  ASSERT_EQ(full.size(), boundaries.back());

  const std::size_t last_group_start = boundaries[2];  // first 2 records durable
  const auto torn = path_.string() + ".torn";
  for (std::size_t cut = last_group_start; cut < full.size(); ++cut) {
    std::filesystem::remove(torn);
    {
      std::ofstream out(torn, std::ios::binary);
      out.write(reinterpret_cast<const char*>(full.data()),
                static_cast<std::streamsize>(cut));
    }
    std::uint64_t replayed = 0;
    FileWal::Visitor visitor;
    visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
    const auto result = FileWal::replay(torn, visitor, /*truncate_corrupt_tail=*/true);

    // The clean prefix is every record whose end fits inside the cut.
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() && boundaries[complete + 1] <= cut) ++complete;
    EXPECT_EQ(replayed, complete) << "cut at " << cut;
    EXPECT_EQ(result.valid_bytes, boundaries[complete]) << "cut at " << cut;
    EXPECT_EQ(result.corrupt_tail, cut != boundaries[complete]) << "cut at " << cut;
    EXPECT_EQ(std::filesystem::file_size(torn), boundaries[complete]) << "cut at " << cut;
  }
  std::filesystem::remove(torn);
}

TEST_F(WalTest, GroupCommitRecoversAcrossReopen) {
  // Write through the group path, then replay + append inline, then replay
  // again: the formats interoperate end to end.
  {
    GroupCommitWalOptions options;
    GroupCommitWal wal(std::make_unique<FileWal>(path_.string()), options);
    wal.append_block(make_block(0, 1), true);
    wal.append_block(make_block(1, 2), false);
  }
  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  EXPECT_FALSE(FileWal::replay(path_.string(), visitor).corrupt_tail);
  EXPECT_EQ(replayed, 2u);
  {
    FileWal wal(path_.string());
    wal.append_block(make_block(2, 3), false);
  }
  replayed = 0;
  const auto result = FileWal::replay(path_.string(), visitor);
  EXPECT_EQ(result.records, 3u);
  EXPECT_FALSE(result.corrupt_tail);
}

TEST_F(WalTest, LargeLogReplaysCompletely) {
  constexpr int kBlocks = 200;
  {
    FileWal wal(path_.string());
    for (int i = 0; i < kBlocks; ++i) {
      wal.append_block(make_block(i % 4, 1000 + i), i % 4 == 0);
    }
  }
  int replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto result = FileWal::replay(path_.string(), visitor);
  EXPECT_EQ(replayed, kBlocks);
  EXPECT_FALSE(result.corrupt_tail);
}

}  // namespace
}  // namespace mahimahi
