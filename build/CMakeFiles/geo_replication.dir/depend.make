# Empty dependencies file for geo_replication.
# This may be replaced when dependencies are built.
