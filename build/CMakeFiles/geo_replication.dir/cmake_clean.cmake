file(REMOVE_RECURSE
  "CMakeFiles/geo_replication.dir/examples/geo_replication.cpp.o"
  "CMakeFiles/geo_replication.dir/examples/geo_replication.cpp.o.d"
  "geo_replication"
  "geo_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
