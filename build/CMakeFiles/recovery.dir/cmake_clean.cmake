file(REMOVE_RECURSE
  "CMakeFiles/recovery.dir/examples/recovery.cpp.o"
  "CMakeFiles/recovery.dir/examples/recovery.cpp.o.d"
  "recovery"
  "recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
