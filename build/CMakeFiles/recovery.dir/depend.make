# Empty dependencies file for recovery.
# This may be replaced when dependencies are built.
