# Empty dependencies file for test_linearize.
# This may be replaced when dependencies are built.
