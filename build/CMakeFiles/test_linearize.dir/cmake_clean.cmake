file(REMOVE_RECURSE
  "CMakeFiles/test_linearize.dir/tests/test_linearize.cpp.o"
  "CMakeFiles/test_linearize.dir/tests/test_linearize.cpp.o.d"
  "test_linearize"
  "test_linearize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linearize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
