# Empty dependencies file for test_serde.
# This may be replaced when dependencies are built.
