file(REMOVE_RECURSE
  "CMakeFiles/test_serde.dir/tests/test_serde.cpp.o"
  "CMakeFiles/test_serde.dir/tests/test_serde.cpp.o.d"
  "test_serde"
  "test_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
