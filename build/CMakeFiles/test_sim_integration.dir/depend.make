# Empty dependencies file for test_sim_integration.
# This may be replaced when dependencies are built.
