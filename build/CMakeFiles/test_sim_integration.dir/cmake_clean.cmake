file(REMOVE_RECURSE
  "CMakeFiles/test_sim_integration.dir/tests/test_sim_integration.cpp.o"
  "CMakeFiles/test_sim_integration.dir/tests/test_sim_integration.cpp.o.d"
  "test_sim_integration"
  "test_sim_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
