# Empty dependencies file for mahimahi.
# This may be replaced when dependencies are built.
