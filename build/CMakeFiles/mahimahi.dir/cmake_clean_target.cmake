file(REMOVE_RECURSE
  "libmahimahi.a"
)
