
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/commit_probability.cpp" "CMakeFiles/mahimahi.dir/src/analysis/commit_probability.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/analysis/commit_probability.cpp.o.d"
  "/root/repo/src/app/kv_store.cpp" "CMakeFiles/mahimahi.dir/src/app/kv_store.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/app/kv_store.cpp.o.d"
  "/root/repo/src/app/replicated_kv.cpp" "CMakeFiles/mahimahi.dir/src/app/replicated_kv.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/app/replicated_kv.cpp.o.d"
  "/root/repo/src/baselines/tusk.cpp" "CMakeFiles/mahimahi.dir/src/baselines/tusk.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/baselines/tusk.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "CMakeFiles/mahimahi.dir/src/common/crc32.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/common/crc32.cpp.o.d"
  "/root/repo/src/common/hex.cpp" "CMakeFiles/mahimahi.dir/src/common/hex.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/common/hex.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/mahimahi.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/mahimahi.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/core/committer.cpp" "CMakeFiles/mahimahi.dir/src/core/committer.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/core/committer.cpp.o.d"
  "/root/repo/src/core/linearize.cpp" "CMakeFiles/mahimahi.dir/src/core/linearize.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/core/linearize.cpp.o.d"
  "/root/repo/src/core/vote_index.cpp" "CMakeFiles/mahimahi.dir/src/core/vote_index.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/core/vote_index.cpp.o.d"
  "/root/repo/src/crypto/blake2b.cpp" "CMakeFiles/mahimahi.dir/src/crypto/blake2b.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/blake2b.cpp.o.d"
  "/root/repo/src/crypto/coin.cpp" "CMakeFiles/mahimahi.dir/src/crypto/coin.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/coin.cpp.o.d"
  "/root/repo/src/crypto/curve25519.cpp" "CMakeFiles/mahimahi.dir/src/crypto/curve25519.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/curve25519.cpp.o.d"
  "/root/repo/src/crypto/dleq.cpp" "CMakeFiles/mahimahi.dir/src/crypto/dleq.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/dleq.cpp.o.d"
  "/root/repo/src/crypto/ed25519.cpp" "CMakeFiles/mahimahi.dir/src/crypto/ed25519.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/ed25519.cpp.o.d"
  "/root/repo/src/crypto/fracroot.cpp" "CMakeFiles/mahimahi.dir/src/crypto/fracroot.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/fracroot.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/mahimahi.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/mahimahi.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "CMakeFiles/mahimahi.dir/src/crypto/sha512.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/sha512.cpp.o.d"
  "/root/repo/src/crypto/threshold_vrf.cpp" "CMakeFiles/mahimahi.dir/src/crypto/threshold_vrf.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/crypto/threshold_vrf.cpp.o.d"
  "/root/repo/src/dag/dag.cpp" "CMakeFiles/mahimahi.dir/src/dag/dag.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/dag/dag.cpp.o.d"
  "/root/repo/src/net/event_loop.cpp" "CMakeFiles/mahimahi.dir/src/net/event_loop.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/net/event_loop.cpp.o.d"
  "/root/repo/src/net/node_runtime.cpp" "CMakeFiles/mahimahi.dir/src/net/node_runtime.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/net/node_runtime.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "CMakeFiles/mahimahi.dir/src/net/tcp.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/net/tcp.cpp.o.d"
  "/root/repo/src/net/worker_pool.cpp" "CMakeFiles/mahimahi.dir/src/net/worker_pool.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/net/worker_pool.cpp.o.d"
  "/root/repo/src/serde/serde.cpp" "CMakeFiles/mahimahi.dir/src/serde/serde.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/serde/serde.cpp.o.d"
  "/root/repo/src/sim/dag_builder.cpp" "CMakeFiles/mahimahi.dir/src/sim/dag_builder.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/sim/dag_builder.cpp.o.d"
  "/root/repo/src/sim/harness.cpp" "CMakeFiles/mahimahi.dir/src/sim/harness.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/sim/harness.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "CMakeFiles/mahimahi.dir/src/sim/latency.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/sim/latency.cpp.o.d"
  "/root/repo/src/types/block.cpp" "CMakeFiles/mahimahi.dir/src/types/block.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/types/block.cpp.o.d"
  "/root/repo/src/types/committee.cpp" "CMakeFiles/mahimahi.dir/src/types/committee.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/types/committee.cpp.o.d"
  "/root/repo/src/types/validation.cpp" "CMakeFiles/mahimahi.dir/src/types/validation.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/types/validation.cpp.o.d"
  "/root/repo/src/validator/crypto_stage.cpp" "CMakeFiles/mahimahi.dir/src/validator/crypto_stage.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/validator/crypto_stage.cpp.o.d"
  "/root/repo/src/validator/synchronizer.cpp" "CMakeFiles/mahimahi.dir/src/validator/synchronizer.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/validator/synchronizer.cpp.o.d"
  "/root/repo/src/validator/validator.cpp" "CMakeFiles/mahimahi.dir/src/validator/validator.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/validator/validator.cpp.o.d"
  "/root/repo/src/wal/wal.cpp" "CMakeFiles/mahimahi.dir/src/wal/wal.cpp.o" "gcc" "CMakeFiles/mahimahi.dir/src/wal/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
