# Empty dependencies file for test_tusk.
# This may be replaced when dependencies are built.
