file(REMOVE_RECURSE
  "CMakeFiles/test_tusk.dir/tests/test_tusk.cpp.o"
  "CMakeFiles/test_tusk.dir/tests/test_tusk.cpp.o.d"
  "test_tusk"
  "test_tusk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tusk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
