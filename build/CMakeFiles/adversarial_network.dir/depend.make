# Empty dependencies file for adversarial_network.
# This may be replaced when dependencies are built.
