file(REMOVE_RECURSE
  "CMakeFiles/adversarial_network.dir/examples/adversarial_network.cpp.o"
  "CMakeFiles/adversarial_network.dir/examples/adversarial_network.cpp.o.d"
  "adversarial_network"
  "adversarial_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
