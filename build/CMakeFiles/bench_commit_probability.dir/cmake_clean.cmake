file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_probability.dir/bench/bench_commit_probability.cpp.o"
  "CMakeFiles/bench_commit_probability.dir/bench/bench_commit_probability.cpp.o.d"
  "bench_commit_probability"
  "bench_commit_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
