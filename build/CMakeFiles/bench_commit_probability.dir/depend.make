# Empty dependencies file for bench_commit_probability.
# This may be replaced when dependencies are built.
