file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_block.dir/tests/test_fuzz_block.cpp.o"
  "CMakeFiles/test_fuzz_block.dir/tests/test_fuzz_block.cpp.o.d"
  "test_fuzz_block"
  "test_fuzz_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
