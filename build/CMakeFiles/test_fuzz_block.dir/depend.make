# Empty dependencies file for test_fuzz_block.
# This may be replaced when dependencies are built.
