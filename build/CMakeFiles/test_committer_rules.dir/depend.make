# Empty dependencies file for test_committer_rules.
# This may be replaced when dependencies are built.
