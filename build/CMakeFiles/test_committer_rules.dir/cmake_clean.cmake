file(REMOVE_RECURSE
  "CMakeFiles/test_committer_rules.dir/tests/test_committer_rules.cpp.o"
  "CMakeFiles/test_committer_rules.dir/tests/test_committer_rules.cpp.o.d"
  "test_committer_rules"
  "test_committer_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_committer_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
