# Empty dependencies file for crash_faults.
# This may be replaced when dependencies are built.
