file(REMOVE_RECURSE
  "CMakeFiles/crash_faults.dir/examples/crash_faults.cpp.o"
  "CMakeFiles/crash_faults.dir/examples/crash_faults.cpp.o.d"
  "crash_faults"
  "crash_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
