# Empty dependencies file for bench_fig5_leaders_w4.
# This may be replaced when dependencies are built.
