# Empty dependencies file for test_committer_property.
# This may be replaced when dependencies are built.
