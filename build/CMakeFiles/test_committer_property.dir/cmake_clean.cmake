file(REMOVE_RECURSE
  "CMakeFiles/test_committer_property.dir/tests/test_committer_property.cpp.o"
  "CMakeFiles/test_committer_property.dir/tests/test_committer_property.cpp.o.d"
  "test_committer_property"
  "test_committer_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_committer_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
