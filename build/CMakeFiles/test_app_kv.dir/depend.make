# Empty dependencies file for test_app_kv.
# This may be replaced when dependencies are built.
