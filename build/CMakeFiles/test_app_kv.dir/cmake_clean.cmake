file(REMOVE_RECURSE
  "CMakeFiles/test_app_kv.dir/tests/test_app_kv.cpp.o"
  "CMakeFiles/test_app_kv.dir/tests/test_app_kv.cpp.o.d"
  "test_app_kv"
  "test_app_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
