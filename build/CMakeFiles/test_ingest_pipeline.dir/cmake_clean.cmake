file(REMOVE_RECURSE
  "CMakeFiles/test_ingest_pipeline.dir/tests/test_ingest_pipeline.cpp.o"
  "CMakeFiles/test_ingest_pipeline.dir/tests/test_ingest_pipeline.cpp.o.d"
  "test_ingest_pipeline"
  "test_ingest_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ingest_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
