# Empty dependencies file for test_ingest_pipeline.
# This may be replaced when dependencies are built.
