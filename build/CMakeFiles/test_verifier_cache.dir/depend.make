# Empty dependencies file for test_verifier_cache.
# This may be replaced when dependencies are built.
