file(REMOVE_RECURSE
  "CMakeFiles/test_verifier_cache.dir/tests/test_verifier_cache.cpp.o"
  "CMakeFiles/test_verifier_cache.dir/tests/test_verifier_cache.cpp.o.d"
  "test_verifier_cache"
  "test_verifier_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verifier_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
