file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_leaders_w5.dir/bench/bench_fig7_leaders_w5.cpp.o"
  "CMakeFiles/bench_fig7_leaders_w5.dir/bench/bench_fig7_leaders_w5.cpp.o.d"
  "bench_fig7_leaders_w5"
  "bench_fig7_leaders_w5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_leaders_w5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
