# Empty dependencies file for bench_fig7_leaders_w5.
# This may be replaced when dependencies are built.
