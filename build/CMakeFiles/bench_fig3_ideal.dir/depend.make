# Empty dependencies file for bench_fig3_ideal.
# This may be replaced when dependencies are built.
