file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ideal.dir/bench/bench_fig3_ideal.cpp.o"
  "CMakeFiles/bench_fig3_ideal.dir/bench/bench_fig3_ideal.cpp.o.d"
  "bench_fig3_ideal"
  "bench_fig3_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
