file(REMOVE_RECURSE
  "CMakeFiles/byzantine_equivocation.dir/examples/byzantine_equivocation.cpp.o"
  "CMakeFiles/byzantine_equivocation.dir/examples/byzantine_equivocation.cpp.o.d"
  "byzantine_equivocation"
  "byzantine_equivocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_equivocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
