# Empty dependencies file for byzantine_equivocation.
# This may be replaced when dependencies are built.
