# Empty dependencies file for test_crypto_coin.
# This may be replaced when dependencies are built.
