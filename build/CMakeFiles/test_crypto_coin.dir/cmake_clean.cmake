file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_coin.dir/tests/test_crypto_coin.cpp.o"
  "CMakeFiles/test_crypto_coin.dir/tests/test_crypto_coin.cpp.o.d"
  "test_crypto_coin"
  "test_crypto_coin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
