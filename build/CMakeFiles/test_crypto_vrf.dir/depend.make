# Empty dependencies file for test_crypto_vrf.
# This may be replaced when dependencies are built.
