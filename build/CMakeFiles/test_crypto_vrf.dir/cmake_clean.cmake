file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_vrf.dir/tests/test_crypto_vrf.cpp.o"
  "CMakeFiles/test_crypto_vrf.dir/tests/test_crypto_vrf.cpp.o.d"
  "test_crypto_vrf"
  "test_crypto_vrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_vrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
