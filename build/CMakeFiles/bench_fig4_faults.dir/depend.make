# Empty dependencies file for bench_fig4_faults.
# This may be replaced when dependencies are built.
