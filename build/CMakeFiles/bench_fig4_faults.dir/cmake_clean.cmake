file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_faults.dir/bench/bench_fig4_faults.cpp.o"
  "CMakeFiles/bench_fig4_faults.dir/bench/bench_fig4_faults.cpp.o.d"
  "bench_fig4_faults"
  "bench_fig4_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
