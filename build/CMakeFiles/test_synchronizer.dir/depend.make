# Empty dependencies file for test_synchronizer.
# This may be replaced when dependencies are built.
