file(REMOVE_RECURSE
  "CMakeFiles/test_synchronizer.dir/tests/test_synchronizer.cpp.o"
  "CMakeFiles/test_synchronizer.dir/tests/test_synchronizer.cpp.o.d"
  "test_synchronizer"
  "test_synchronizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synchronizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
