# Empty dependencies file for test_crypto_ed25519.
# This may be replaced when dependencies are built.
