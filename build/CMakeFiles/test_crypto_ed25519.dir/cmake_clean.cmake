file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_ed25519.dir/tests/test_crypto_ed25519.cpp.o"
  "CMakeFiles/test_crypto_ed25519.dir/tests/test_crypto_ed25519.cpp.o.d"
  "test_crypto_ed25519"
  "test_crypto_ed25519.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_ed25519.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
